"""The PDES coordinator: lockstep epoch barriers over worker pipes.

:func:`run_partitioned` plans the tiling, spawns one worker process per
partition (reusing the :class:`~repro.api.runner.ExperimentRunner`
pipe-protocol style), and advances all partitions in conservative
lockstep windows:

1. every partition reports its *next activity time* ``na_p`` — the
   earliest instant anything can happen there, including its own
   undelivered inbound flits (this is the null message: an empty outbox
   plus a time promise);
2. the coordinator folds in the flits it is still routing and picks the
   horizon ``H = min_p(effective na_p) + lookahead`` — no partition can
   receive anything before ``H``, because every boundary crossing pays
   the full ``epoch_cycles`` cut latency on top of a departure no
   earlier than ``min_p(effective na_p)``;
3. all partitions simulate to ``H`` in parallel and exchange the flits
   that crossed a cut on the way.

When every partition is drained (all ``na`` are ``None`` and nothing is
in flight) the workers trim their clocks to the last real activity and
ship their statistics, which :func:`~repro.pdes.merge.merge_reports`
folds into one sequential-shaped :class:`~repro.soc.stats.SimulationReport`.

Inside an already-forked daemon worker (an ``ExperimentRunner`` shard)
processes cannot fork again, so the same round loop runs in-process over
:class:`~repro.pdes.partition.PartitionSim` objects directly — identical
simulation, no parallelism.
"""

from __future__ import annotations

import multiprocessing
import time as _wallclock
import traceback
from typing import List, Optional, Tuple

from ..noc.partitioned import BoundaryFlit
from .merge import merge_reports
from .partition import PartitionPayload, PartitionSim
from .plan import PartitionPlan, plan_partitions

#: Hard cap on sync rounds — a runaway backstop far above any real run
#: (the horizon advances by at least one epoch per round).
_MAX_ROUNDS = 10_000_000


class PartitionWorkerError(RuntimeError):
    """A partition worker died or reported a failure."""


def _partition_main(conn, scenario, plan: PartitionPlan, index: int) -> None:
    """Worker-process entry point (same pipe idiom as the runner shards)."""
    try:
        part = PartitionSim(scenario, plan, index)
        conn.send(("ready", part.next_activity()))
        while True:
            message = conn.recv()
            if message[0] == "run":
                _, horizon, inbound = message
                outbox, bound = part.advance(horizon, inbound)
                conn.send(("round", outbox, bound))
            elif message[0] == "finish":
                conn.send(("final", part.finish()))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {message[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _ProcessWorker:
    """One partition in its own process, spoken to over a pipe."""

    def __init__(self, ctx, scenario, plan: PartitionPlan, index: int) -> None:
        self.index = index
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_partition_main, args=(child, scenario, plan, index),
            daemon=True, name=f"pdes-p{index}",
        )
        self.process.start()
        child.close()

    def _recv(self):
        try:
            message = self.conn.recv()
        except EOFError:
            raise PartitionWorkerError(
                f"partition {self.index} worker died "
                f"(exit code {self.process.exitcode})"
            ) from None
        if message[0] == "error":
            raise PartitionWorkerError(
                f"partition {self.index} failed:\n{message[1]}")
        return message

    def ready(self) -> Optional[int]:
        return self._recv()[1]

    def start_round(self, horizon: int, inbound: List[BoundaryFlit]) -> None:
        self.conn.send(("run", horizon, inbound))

    def finish_round(self) -> Tuple[List[BoundaryFlit], Optional[int]]:
        _, outbox, bound = self._recv()
        return outbox, bound

    def finish(self) -> PartitionPayload:
        self.conn.send(("finish",))
        return self._recv()[1]

    def close(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - cleanup path
            self.process.terminate()
            self.process.join(timeout=5.0)


class _InProcessWorker:
    """Fallback: the same round protocol over a local PartitionSim."""

    def __init__(self, scenario, plan: PartitionPlan, index: int) -> None:
        self.index = index
        self.part = PartitionSim(scenario, plan, index)
        self._round: Optional[Tuple[int, List[BoundaryFlit]]] = None

    def ready(self) -> Optional[int]:
        return self.part.next_activity()

    def start_round(self, horizon: int, inbound: List[BoundaryFlit]) -> None:
        self._round = (horizon, inbound)

    def finish_round(self) -> Tuple[List[BoundaryFlit], Optional[int]]:
        horizon, inbound = self._round
        self._round = None
        return self.part.advance(horizon, inbound)

    def finish(self) -> PartitionPayload:
        return self.part.finish()

    def close(self) -> None:
        pass


def run_partitioned(scenario, *, mode: str = "auto"):
    """Run ``scenario`` partitioned; returns the merged report.

    ``mode`` is ``"process"`` (one worker process per partition),
    ``"inprocess"`` (same windows, no processes — used automatically
    inside daemon workers, which cannot fork), or ``"auto"``.
    """
    config = scenario.config
    plan = plan_partitions(config)
    count = plan.partitions
    lookahead = plan.epoch_cycles * config.clock_period
    max_time = scenario.max_time
    if mode == "auto":
        mode = ("inprocess" if multiprocessing.current_process().daemon
                else "process")
    if mode not in ("process", "inprocess"):
        raise ValueError(f"unknown PDES mode {mode!r}")

    wall_start = _wallclock.perf_counter()
    if mode == "process":
        ctx = multiprocessing.get_context()
        workers: List = [_ProcessWorker(ctx, scenario, plan, index)
                         for index in range(count)]
    else:
        workers = [_InProcessWorker(scenario, plan, index)
                   for index in range(count)]

    rounds = 0
    boundary_messages = 0
    try:
        bounds: List[Optional[int]] = [worker.ready() for worker in workers]
        inbound: List[List[BoundaryFlit]] = [[] for _ in range(count)]
        frontier = 0
        while True:
            effective = list(bounds)
            for dest in range(count):
                for flit in inbound[dest]:
                    if (effective[dest] is None
                            or flit.deliver_time < effective[dest]):
                        effective[dest] = flit.deliver_time
            alive = [bound for bound in effective if bound is not None]
            if not alive:
                break
            earliest = min(alive)
            if max_time is not None and earliest > max_time:
                if frontier >= max_time:
                    break
                # Nothing more can happen before the deadline: pad every
                # partition's clock to it, exactly like sc_start.
                horizon = max_time
            else:
                horizon = earliest + lookahead
                if max_time is not None and horizon > max_time:
                    horizon = max_time
            for index, worker in enumerate(workers):
                worker.start_round(horizon, inbound[index])
            inbound = [[] for _ in range(count)]
            for index, worker in enumerate(workers):
                outbox, bound = worker.finish_round()
                bounds[index] = bound
                for flit in outbox:
                    # The flit's next port key names the node it enters;
                    # its owner is the destination partition.
                    node = flit.packet.path[flit.packet.hop][1]
                    inbound[plan.node_owner[node]].append(flit)
                    boundary_messages += 1
            frontier = horizon
            rounds += 1
            if rounds > _MAX_ROUNDS:  # pragma: no cover - runaway guard
                raise PartitionWorkerError(
                    "PDES round limit exceeded (coordinator stuck?)")
        payloads = [worker.finish() for worker in workers]
    finally:
        for worker in workers:
            worker.close()
    wallclock = _wallclock.perf_counter() - wall_start
    return merge_reports(
        scenario, plan, payloads,
        mode=mode, rounds=rounds,
        boundary_messages=boundary_messages,
        wallclock_seconds=wallclock,
    )
