"""repro.pdes — partitioned (parallel discrete-event) simulation.

Shards a mesh platform into rectangular spatial partitions, runs each
partition's event loop in its own worker process, and synchronizes
conservatively at link-latency epochs:

* :func:`plan_partitions` / :class:`PartitionPlan` — quadrant tiling of
  the NoC, PE/memory ownership, epoch (lookahead) selection;
* :class:`~repro.pdes.partition.PartitionSim` — one partition's platform
  shard plus its epoch-bounded kernel windows;
* :func:`run_partitioned` — the coordinator: lockstep epoch barriers,
  boundary-flit routing, null messages (empty outboxes + next-activity
  reports), merged :class:`~repro.soc.stats.SimulationReport`;
* :class:`~repro.noc.partitioned.PartitionError` — raised for features
  that partitioning rejects (re-exported here for convenience).

Scenario code never calls this module directly: setting
``partitions=N`` on a :class:`~repro.soc.config.PlatformConfig` makes
:func:`repro.api.run_scenario` dispatch here automatically.
"""

from ..noc.partitioned import BoundaryFlit, PartitionContext, PartitionError
from .coordinator import run_partitioned
from .plan import DEFAULT_EPOCH_CYCLES, PartitionPlan, plan_partitions

__all__ = [
    "BoundaryFlit",
    "DEFAULT_EPOCH_CYCLES",
    "PartitionContext",
    "PartitionError",
    "PartitionPlan",
    "plan_partitions",
    "run_partitioned",
]
