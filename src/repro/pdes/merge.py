"""Merging per-partition statistics into one sequential-shaped report.

Every helper here is exact arithmetic over disjoint contributions:

* kernel counters (``events_fired``, ``delta_cycles``,
  ``process_activations``, ``timed_steps``) sum over partitions — each
  wake/evaluation happens in exactly one partition's kernel;
* transactions and latency samples are recorded once, master-side, at
  packet completion — a boundary-crossing transaction is accounted only
  by the partition that owns its master, so summing never double-counts;
* latency percentiles are recomputed from the *concatenated* raw sample
  arrays (partitions ship their packed int64 arrays), which is exact —
  percentiles of percentiles would not be;
* per-link NoC counters merge field-wise by link name (each physical
  link's traffic is simulated by exactly one partition);
* utilization uses the full-mesh port count and the merged end time, the
  same denominator the sequential report uses.

The merged report carries a ``pdes`` block with the partition/epoch
geometry, sync-round and boundary-message counts, the per-partition
breakdown, and (when tracing is on) one merged Chrome trace whose track
groups are prefixed ``p<k>:`` so every partition gets a distinct pid.
"""

from __future__ import annotations

import dataclasses
from array import array
from typing import Dict, List, Optional

from ..fabric.stats import BusStats, percentile_summary
from ..noc.stats import NocStats
from ..obs.export import chrome_trace
from ..soc.stats import SimulationReport
from .partition import PartitionPayload
from .plan import PartitionPlan

#: Kernel counters that sum exactly across partitions.
_SUMMED_KERNEL_COUNTERS = ("delta_cycles", "timed_steps",
                           "process_activations", "events_fired",
                           "wallclock_seconds")


def merge_kernel_stats(stats_dicts: List[dict]) -> dict:
    """Sum the scheduler counters; the end time is the latest partition's."""
    merged = {counter: 0 for counter in _SUMMED_KERNEL_COUNTERS}
    merged["wallclock_seconds"] = 0.0
    merged["end_time"] = 0
    for stats in stats_dicts:
        for counter in _SUMMED_KERNEL_COUNTERS:
            merged[counter] += stats.get(counter, 0)
        merged["end_time"] = max(merged["end_time"],
                                 stats.get("end_time", 0))
    return merged


def merge_bus_stats(payloads: List[PartitionPayload]) -> BusStats:
    """Field-wise sum of the fabric counters (masters are disjoint)."""
    merged = BusStats()
    for payload in payloads:
        stats = payload.bus_stats
        merged.transactions += stats.transactions
        merged.busy_cycles += stats.busy_cycles
        merged.decode_errors += stats.decode_errors
        for master_id, per_master in stats.per_master.items():
            target = merged.master(master_id)
            target.transactions += per_master.transactions
            target.reads += per_master.reads
            target.writes += per_master.writes
            target.words += per_master.words
            target.busy_cycles += per_master.busy_cycles
            target.wait_cycles += per_master.wait_cycles
            target.errors += per_master.errors
    return merged


def merge_latencies(payloads: List[PartitionPayload]) -> array:
    """Concatenate the raw completion-latency samples (partition order)."""
    merged = array("q")
    for payload in payloads:
        merged.extend(payload.latencies)
    return merged


def merge_grant_counts(payloads: List[PartitionPayload]) -> Dict[int, int]:
    merged: Dict[int, int] = {}
    for payload in payloads:
        for master_id, count in payload.grant_counts.items():
            merged[master_id] = merged.get(master_id, 0) + count
    return merged


def merge_noc_stats(payloads: List[PartitionPayload]) -> NocStats:
    """Merge per-link/per-router counters by name/node (disjoint traffic)."""
    merged = NocStats()
    for payload in payloads:
        stats = payload.noc_stats
        for name, link in stats.links.items():
            target = merged.link(name)
            target.busy_cycles += link.busy_cycles
            target.packets += link.packets
            target.flits += link.flits
            target.blocked_cycles += link.blocked_cycles
            target.contended_grants += link.contended_grants
        for node, count in stats.router_contention.items():
            merged.router_contention[node] = (
                merged.router_contention.get(node, 0) + count)
        merged.latencies.extend(stats.latencies)
        merged.packets_sent += stats.packets_sent
        merged.flits_sent += stats.flits_sent
        merged.hops_total += stats.hops_total
    return merged


def merge_interconnect_stats(config, payloads: List[PartitionPayload],
                             simulated_time: int) -> dict:
    """Rebuild the sequential ``interconnect_stats`` block exactly
    (same keys, same derivations) from the merged raw counters."""
    period = config.clock_period
    noc_config = config.resolved_noc()
    bus = merge_bus_stats(payloads)
    latencies = merge_latencies(payloads)
    noc = merge_noc_stats(payloads)
    grant_counts = merge_grant_counts(payloads)
    elapsed_cycles = simulated_time // period if period else 0
    ports_total = max((payload.ports_total for payload in payloads),
                      default=0)
    utilization = 0.0
    if elapsed_cycles > 0 and ports_total:
        utilization = min(1.0, noc.total_busy_cycles()
                          / (elapsed_cycles * ports_total))
    block = {
        **bus.as_dict(),
        "utilization": utilization,
        "latency_percentiles": percentile_summary(latencies),
        "arbitration": {
            "kind": payloads[0].arbitration_kind if payloads else "?",
            "grant_counts": {master_id: count for master_id, count in
                             sorted(grant_counts.items())},
        },
    }
    noc_block = {
        "rows": noc_config.rows,
        "cols": noc_config.cols,
        "flit_bytes": noc_config.flit_bytes,
        "link_cycles": noc_config.link_cycles,
        "router_cycles": noc_config.router_cycles,
    }
    noc_block.update(noc.as_dict(elapsed_cycles=elapsed_cycles))
    block["noc"] = noc_block
    monitor_rows = sorted(
        (row for payload in payloads for row in payload.monitor_rows),
        key=lambda row: row[0],
    )
    if monitor_rows:
        block["memory_monitors"] = [stats for _, stats, _ in monitor_rows]
        block["memory_transactions"] = sum(count for _, _, count
                                           in monitor_rows)
    return block


def _merge_trace(payloads: List[PartitionPayload]) -> Optional[dict]:
    """One Chrome trace over all partitions, distinct pid per partition."""
    if all(payload.trace_events is None for payload in payloads):
        return None
    events = []
    dropped = 0
    filtered = 0
    for payload in payloads:
        dropped += payload.trace_dropped
        filtered += payload.trace_filtered
        for event in payload.trace_events or ():
            group, lane = event.track
            events.append(dataclasses.replace(
                event, track=(f"p{payload.index}:{group}", lane)))

    class _Merged:
        pass

    merged = _Merged()
    merged.events = events
    merged.dropped = dropped
    merged.filtered = filtered
    return chrome_trace(merged)


def _merge_obs_summary(payloads: List[PartitionPayload]) -> Optional[dict]:
    summaries = [(payload.index, payload.obs_summary)
                 for payload in payloads if payload.obs_summary is not None]
    if not summaries:
        return None
    merged: dict = {"config": summaries[0][1].get("config")}
    traces = [summary.get("trace") for _, summary in summaries
              if summary.get("trace")]
    if traces:
        merged["trace"] = {
            "events": sum(trace.get("events", 0) for trace in traces),
            "dropped": sum(trace.get("dropped", 0) for trace in traces),
            "filtered": sum(trace.get("filtered", 0) for trace in traces),
        }
    merged["per_partition"] = [dict(summary, partition=index)
                               for index, summary in summaries]
    return merged


def merge_reports(scenario, plan: PartitionPlan,
                  payloads: List[PartitionPayload], *, mode: str,
                  rounds: int, boundary_messages: int,
                  wallclock_seconds: float) -> SimulationReport:
    """Fold the partition payloads into one :class:`SimulationReport`."""
    config = scenario.config
    simulated_time = max((payload.simulated_time for payload in payloads),
                         default=0)
    pe_rows = sorted((row for payload in payloads
                      for row in payload.pe_rows), key=lambda row: row[0])
    memory_rows = sorted((row for payload in payloads
                          for row in payload.memory_rows),
                         key=lambda row: row[0])
    timeseries = [dict(row, partition=payload.index)
                  for payload in payloads for row in payload.timeseries]
    pdes_block: dict = {
        "partitions": plan.partitions,
        "epoch_cycles": plan.epoch_cycles,
        "mode": mode,
        "rounds": rounds,
        "boundary_messages": boundary_messages,
        "per_partition": [
            {
                "partition": payload.index,
                "pes": list(payload.pes),
                "memories": list(payload.memories),
                "simulated_time": payload.simulated_time,
                "kernel_stats": dict(payload.kernel_stats),
                "wallclock_seconds": payload.wallclock_seconds,
                "boundary_sent": payload.boundary_sent,
                "boundary_received": payload.boundary_received,
            }
            for payload in payloads
        ],
    }
    trace = _merge_trace(payloads)
    if trace is not None:
        pdes_block["chrome_trace"] = trace
    return SimulationReport(
        description=config.describe(),
        simulated_time=simulated_time,
        clock_period=config.clock_period,
        wallclock_seconds=wallclock_seconds,
        kernel_stats=merge_kernel_stats(
            [payload.kernel_stats for payload in payloads]),
        pe_reports=[report for _, report, _, _, _ in pe_rows],
        memory_reports=[report for _, report in memory_rows],
        interconnect_stats=merge_interconnect_stats(
            config, payloads, simulated_time),
        timeseries=timeseries,
        obs_summary=_merge_obs_summary(payloads),
        results={name: result for _, _, result, _, name in pe_rows},
        finished={name: finished for _, _, _, finished, name in pe_rows},
        pdes=pdes_block,
    )
