"""Shared helpers for the evaluation benches.

Every bench regenerates one row/figure of the paper's evaluation (see the
experiment index in DESIGN.md and the recorded numbers in EXPERIMENTS.md).
Results are printed and also appended to ``benchmarks/results/<bench>.txt``
so they survive pytest's output capturing.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def emit(bench_name: str, text: str) -> None:
    """Print a result block and persist it under ``benchmarks/results/``."""
    banner = f"\n===== {bench_name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{bench_name}.txt"), "w") as handle:
        handle.write(banner)


def format_rows(rows: List[Dict[str, object]], columns: Optional[List[str]] = None
                ) -> str:
    """Aligned text table (thin wrapper over the library formatter)."""
    from repro.soc import format_table

    return format_table(rows, columns)
