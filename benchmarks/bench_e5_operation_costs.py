"""E5 — per-operation cost of the wrapper mechanisms (Section 3).

For every operation the wrapper supports (allocation, scalar write/read,
indexed-structure transfers, pointer-arithmetic access, reservation,
deallocation) this bench measures, with the :func:`repro.api.drive`
micro-bench helper:

* the simulated cycles charged by the cycle-true FSM, and
* the host-side microseconds spent serving the operation,

for both the host-backed wrapper and the fully-modelled baseline, at two
heap occupancies (nearly empty vs. populated with 200 live allocations).
The paper's argument is visible in the shape: wrapper costs are O(1) in the
number of live allocations while the fully-modelled allocator walk grows.
"""

from __future__ import annotations

from repro.api import PerfRecorder, PerfTimer, drive
from repro.fabric import BusOp, BusRequest
from repro.memory import (
    IO_ARRAY_BASE,
    MemCommand,
    MemOpcode,
    ModeledDynamicMemory,
)
from repro.wrapper import SharedMemoryWrapper

from common import emit, format_rows

POPULATED_ALLOCATIONS = 200
ARRAY_WORDS = 32


def populate(memory, count):
    pointers = []
    for _ in range(count):
        outcome = drive(memory, MemCommand(MemOpcode.ALLOC, dim=8))
        pointers.append(outcome.response.data)
    return pointers


def measure_operations(memory, label):
    """Measure each operation once on ``memory`` and return result rows."""

    def row(operation, outcome):
        return {"memory": label, "operation": operation,
                "cycles": outcome.cycles, "host us": round(outcome.host_us, 1)}

    rows = []
    alloc = drive(memory, MemCommand(MemOpcode.ALLOC, dim=ARRAY_WORDS))
    vptr = alloc.response.data
    rows.append(row("ALLOC", alloc))
    rows.append(row("WRITE", drive(memory, MemCommand(
        MemOpcode.WRITE, vptr=vptr, offset=3, data=7))))
    rows.append(row("READ", drive(memory, MemCommand(
        MemOpcode.READ, vptr=vptr, offset=3))))
    rows.append(row("READ (ptr arith)", drive(memory, MemCommand(
        MemOpcode.READ, vptr=vptr + 12))))
    drive(memory, BusRequest(0, BusOp.WRITE, 0,
                             burst_data=list(range(ARRAY_WORDS))),
          offset=IO_ARRAY_BASE)
    rows.append(row(f"WRITE_ARRAY[{ARRAY_WORDS}]", drive(memory, MemCommand(
        MemOpcode.WRITE_ARRAY, vptr=vptr, dim=ARRAY_WORDS))))
    rows.append(row(f"READ_ARRAY[{ARRAY_WORDS}]", drive(memory, MemCommand(
        MemOpcode.READ_ARRAY, vptr=vptr, dim=ARRAY_WORDS))))
    rows.append(row("RESERVE", drive(memory, MemCommand(
        MemOpcode.RESERVE, vptr=vptr))))
    rows.append(row("FREE", drive(memory, MemCommand(
        MemOpcode.FREE, vptr=vptr))))
    return rows


def alloc_cycles(memory):
    outcome = drive(memory, MemCommand(MemOpcode.ALLOC, dim=8))
    drive(memory, MemCommand(MemOpcode.FREE, vptr=outcome.response.data))
    return outcome.cycles


def test_e5_operation_costs(benchmark):
    results = {}

    def run_all():
        recorder = PerfRecorder("e5_operation_costs")
        with PerfTimer() as wrapper_timer:
            results["wrapper_empty"] = measure_operations(SharedMemoryWrapper(),
                                                          "wrapper (empty)")
        with PerfTimer() as modeled_timer:
            results["modeled_empty"] = measure_operations(
                ModeledDynamicMemory(1 << 20), "modeled (empty)")
        for label, timer, rows in (
                ("wrapper-empty", wrapper_timer, results["wrapper_empty"]),
                ("modeled-empty", modeled_timer, results["modeled_empty"])):
            recorder.record_measurement(
                label, timer.seconds,
                simulated_cycles=sum(row["cycles"] for row in rows))
        recorder.flush()
        wrapper_full = SharedMemoryWrapper()
        populate(wrapper_full, POPULATED_ALLOCATIONS)
        modeled_full = ModeledDynamicMemory(1 << 20)
        populate(modeled_full, POPULATED_ALLOCATIONS)
        results["wrapper_full_alloc"] = alloc_cycles(wrapper_full)
        results["modeled_full_alloc"] = alloc_cycles(modeled_full)
        results["wrapper_empty_alloc"] = alloc_cycles(SharedMemoryWrapper())
        results["modeled_empty_alloc"] = alloc_cycles(ModeledDynamicMemory(1 << 20))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = results["wrapper_empty"] + results["modeled_empty"]
    occupancy_rows = [
        {"memory": "wrapper", "ALLOC cycles (empty heap)": results["wrapper_empty_alloc"],
         f"ALLOC cycles ({POPULATED_ALLOCATIONS} live)": results["wrapper_full_alloc"]},
        {"memory": "modeled", "ALLOC cycles (empty heap)": results["modeled_empty_alloc"],
         f"ALLOC cycles ({POPULATED_ALLOCATIONS} live)": results["modeled_full_alloc"]},
    ]
    emit(
        "e5_operation_costs",
        format_rows(rows)
        + "\n\nallocation cost vs. heap occupancy:\n" + format_rows(occupancy_rows),
    )

    # Shape checks: wrapper allocation cost is independent of occupancy,
    # the fully-modelled allocator's cost grows with the first-fit walk.
    assert results["wrapper_full_alloc"] == results["wrapper_empty_alloc"]
    assert results["modeled_full_alloc"] > results["modeled_empty_alloc"]
    # Array transfers cost more cycles than scalar accesses on both models.
    for label in ("wrapper_empty", "modeled_empty"):
        by_op = {row["operation"]: row["cycles"] for row in results[label]}
        assert by_op[f"READ_ARRAY[{ARRAY_WORDS}]"] > by_op["READ"]
