"""E5 — per-operation cost of the wrapper mechanisms (Section 3).

For every operation the wrapper supports (allocation, scalar write/read,
indexed-structure transfers, pointer-arithmetic access, reservation,
deallocation) this bench measures:

* the simulated cycles charged by the cycle-true FSM, and
* the host-side microseconds spent serving the operation,

for both the host-backed wrapper and the fully-modelled baseline, at two
heap occupancies (nearly empty vs. populated with 200 live allocations).
The paper's argument is visible in the shape: wrapper costs are O(1) in the
number of live allocations while the fully-modelled allocator walk grows.
"""

from __future__ import annotations

import time

import pytest

from repro.interconnect import BusOp, BusRequest
from repro.memory import (
    DataType,
    IO_ARRAY_BASE,
    MemCommand,
    MemOpcode,
    ModeledDynamicMemory,
)
from repro.wrapper import SharedMemoryWrapper

from common import emit, format_rows

POPULATED_ALLOCATIONS = 200
ARRAY_WORDS = 32


def drive(memory, command_or_request, offset=0, master_id=0):
    if isinstance(command_or_request, MemCommand):
        request = BusRequest(master_id, BusOp.WRITE, 0,
                             burst_data=command_or_request.to_words())
    else:
        request = command_or_request
    generator = memory.serve(request, offset)
    cycles = 0
    start = time.perf_counter()
    while True:
        try:
            next(generator)
            cycles += 1
        except StopIteration as stop:
            cycles += 1
            host_us = (time.perf_counter() - start) * 1e6
            return stop.value, cycles, host_us


def populate(memory, count):
    pointers = []
    for _ in range(count):
        response, _, _ = drive(memory, MemCommand(MemOpcode.ALLOC, dim=8))
        pointers.append(response.data)
    return pointers


def measure_operations(memory, label):
    """Measure each operation once on ``memory`` and return result rows."""
    rows = []
    response, cycles, host_us = drive(memory, MemCommand(MemOpcode.ALLOC,
                                                         dim=ARRAY_WORDS))
    vptr = response.data
    rows.append({"memory": label, "operation": "ALLOC", "cycles": cycles,
                 "host us": round(host_us, 1)})
    _, cycles, host_us = drive(memory, MemCommand(MemOpcode.WRITE, vptr=vptr,
                                                  offset=3, data=7))
    rows.append({"memory": label, "operation": "WRITE", "cycles": cycles,
                 "host us": round(host_us, 1)})
    _, cycles, host_us = drive(memory, MemCommand(MemOpcode.READ, vptr=vptr, offset=3))
    rows.append({"memory": label, "operation": "READ", "cycles": cycles,
                 "host us": round(host_us, 1)})
    _, cycles, host_us = drive(memory, MemCommand(MemOpcode.READ, vptr=vptr + 12))
    rows.append({"memory": label, "operation": "READ (ptr arith)", "cycles": cycles,
                 "host us": round(host_us, 1)})
    drive(memory, BusRequest(0, BusOp.WRITE, 0, burst_data=list(range(ARRAY_WORDS))),
          offset=IO_ARRAY_BASE)
    _, cycles, host_us = drive(memory, MemCommand(MemOpcode.WRITE_ARRAY, vptr=vptr,
                                                  dim=ARRAY_WORDS))
    rows.append({"memory": label, "operation": f"WRITE_ARRAY[{ARRAY_WORDS}]",
                 "cycles": cycles, "host us": round(host_us, 1)})
    _, cycles, host_us = drive(memory, MemCommand(MemOpcode.READ_ARRAY, vptr=vptr,
                                                  dim=ARRAY_WORDS))
    rows.append({"memory": label, "operation": f"READ_ARRAY[{ARRAY_WORDS}]",
                 "cycles": cycles, "host us": round(host_us, 1)})
    _, cycles, host_us = drive(memory, MemCommand(MemOpcode.RESERVE, vptr=vptr))
    rows.append({"memory": label, "operation": "RESERVE", "cycles": cycles,
                 "host us": round(host_us, 1)})
    _, cycles, host_us = drive(memory, MemCommand(MemOpcode.FREE, vptr=vptr))
    rows.append({"memory": label, "operation": "FREE", "cycles": cycles,
                 "host us": round(host_us, 1)})
    return rows


def alloc_cycles(memory):
    response, cycles, _ = drive(memory, MemCommand(MemOpcode.ALLOC, dim=8))
    drive(memory, MemCommand(MemOpcode.FREE, vptr=response.data))
    return cycles


def test_e5_operation_costs(benchmark):
    results = {}

    def run_all():
        results["wrapper_empty"] = measure_operations(SharedMemoryWrapper(),
                                                      "wrapper (empty)")
        results["modeled_empty"] = measure_operations(
            ModeledDynamicMemory(1 << 20), "modeled (empty)")
        wrapper_full = SharedMemoryWrapper()
        populate(wrapper_full, POPULATED_ALLOCATIONS)
        modeled_full = ModeledDynamicMemory(1 << 20)
        populate(modeled_full, POPULATED_ALLOCATIONS)
        results["wrapper_full_alloc"] = alloc_cycles(wrapper_full)
        results["modeled_full_alloc"] = alloc_cycles(modeled_full)
        results["wrapper_empty_alloc"] = alloc_cycles(SharedMemoryWrapper())
        results["modeled_empty_alloc"] = alloc_cycles(ModeledDynamicMemory(1 << 20))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = results["wrapper_empty"] + results["modeled_empty"]
    occupancy_rows = [
        {"memory": "wrapper", "ALLOC cycles (empty heap)": results["wrapper_empty_alloc"],
         f"ALLOC cycles ({POPULATED_ALLOCATIONS} live)": results["wrapper_full_alloc"]},
        {"memory": "modeled", "ALLOC cycles (empty heap)": results["modeled_empty_alloc"],
         f"ALLOC cycles ({POPULATED_ALLOCATIONS} live)": results["modeled_full_alloc"]},
    ]
    emit(
        "e5_operation_costs",
        format_rows(rows)
        + "\n\nallocation cost vs. heap occupancy:\n" + format_rows(occupancy_rows),
    )

    # Shape checks: wrapper allocation cost is independent of occupancy,
    # the fully-modelled allocator's cost grows with the first-fit walk.
    assert results["wrapper_full_alloc"] == results["wrapper_empty_alloc"]
    assert results["modeled_full_alloc"] > results["modeled_empty_alloc"]
    # Array transfers cost more cycles than scalar accesses on both models.
    for label in ("wrapper_empty", "modeled_empty"):
        by_op = {row["operation"]: row["cycles"] for row in results[label]}
        assert by_op[f"READ_ARRAY[{ARRAY_WORDS}]"] > by_op["READ"]
