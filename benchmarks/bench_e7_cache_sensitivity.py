"""E7 — cache sensitivity: geometry x write policy x PE count.

The per-PE L1 layer (``repro.cache``) turns locality into an experimental
axis the flat platform never had.  This bench runs the ``stencil`` registry
workload — identical results and operation counts at every point, only the
traversal stride (and with it the locality) changes — across:

* write policy: caches off, write-through, write-back;
* traversal stride: sequential (stride 1) vs. line-hostile (stride 17);
* PE count (coherence pressure grows with sharers);
* cache geometry (capacity sweep at a fixed PE count);
* interconnect topology (bus x crossbar x mesh, caches off vs write-back —
  the L1 layer must remove shared-memory traffic on every topology).

Reported per point: shared-memory transactions observed by the per-memory
:class:`~repro.interconnect.monitor.BusMonitor` probes, aggregate L1 hit
rate, simulated cycles and simulation speed; every point is also recorded
into ``BENCH_kernel.json`` through :class:`~repro.api.perf.PerfRecorder`.
The headline checks: an enabled cache must *strictly* reduce shared-memory
transactions on the sequential sweep, and (full run, capacity-starved
geometry) the hostile stride must hit less than the sequential one.
"""

from __future__ import annotations

from repro.api import (
    ExperimentRunner,
    PerfRecorder,
    PlatformBuilder,
    Scenario,
)

from common import emit, format_rows

PE_COUNTS = [1, 2, 4]
POLICIES = ["write_through", "write_back"]
STRIDES = [1, 17]
#: (sets, ways, line_bytes) points of the geometry sweep (full run only).
#: The first point is capacity-starved (128 B for a ~512 B working set)
#: with two ways, so the stride sweep shows up as conflict misses rather
#: than as deterministic src/dst aliasing.
GEOMETRIES = [(4, 2, 16), (16, 2, 16), (64, 2, 32)]
SIZE = 64
ITERATIONS = 1
GEOMETRY_PES = 2
#: Topology axis: stride-1 stencil, caches off vs write-back, per topology.
TOPOLOGIES = ["shared_bus", "crossbar", "mesh"]
TOPOLOGY_PES = 2


def _scenario(name, pes, stride, policy=None, geometry=None, size=SIZE,
              topology="shared_bus"):
    builder = (PlatformBuilder()
               .pes(pes)
               .wrapper_memories(1)
               .monitored())
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh()
    if policy is not None:
        sets, ways, line_bytes = geometry or (64, 2, 32)
        builder = builder.l1_cache(sets=sets, ways=ways, line_bytes=line_bytes,
                                   policy=policy)
    return Scenario(
        name=name,
        config=builder.build(),
        workload="stencil",
        params={"size": size, "iterations": ITERATIONS, "stride": stride,
                "seed": 11},
        seed=11,
    )


def make_scenarios(pe_counts, geometries):
    scenarios = []
    for pes in pe_counts:
        for stride in STRIDES:
            scenarios.append(_scenario(f"off-p{pes}-s{stride}", pes, stride))
            for policy in POLICIES:
                scenarios.append(_scenario(
                    f"{policy}-p{pes}-s{stride}", pes, stride, policy=policy))
    for sets, ways, line_bytes in geometries:
        for stride in STRIDES:
            scenarios.append(_scenario(
                f"geom{sets}x{ways}x{line_bytes}-s{stride}", GEOMETRY_PES,
                stride, policy="write_back",
                geometry=(sets, ways, line_bytes)))
    for topology in TOPOLOGIES:
        scenarios.append(_scenario(f"{topology}-off-s1", TOPOLOGY_PES, 1,
                                   topology=topology))
        scenarios.append(_scenario(f"{topology}-wb-s1", TOPOLOGY_PES, 1,
                                   policy="write_back", topology=topology))
    return scenarios


def _row(result):
    report = result.report
    stats = report.interconnect_stats
    return {
        "scenario": result.scenario,
        "mem_txns": stats.get("memory_transactions", 0),
        "hit_rate": f"{report.cache_hit_rate() * 100:.1f}%",
        "simulated_cycles": report.simulated_cycles,
        "speed (c/s)": (round(report.simulation_speed)
                        if report.simulation_speed_or_none is not None
                        else "-"),
    }


def test_e7_cache_sensitivity(benchmark, request):
    quick = request.config.getoption("--quick")
    pe_counts = [2] if quick else PE_COUNTS
    geometries = [] if quick else GEOMETRIES
    scenarios = make_scenarios(pe_counts, geometries)
    collected = {}

    def run_sweep():
        runner = ExperimentRunner(
            scenarios, recorder=PerfRecorder("e7_cache_sensitivity"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = {result.scenario: result for result in collected["results"]}
    for result in results.values():
        result.raise_for_status()

    emit(
        "e7_cache_sensitivity",
        format_rows([_row(result) for result in collected["results"]])
        + "\n\nstencil results are bit-identical at every point; mem_txns "
        "counts shared-memory transactions seen by the BusMonitor probes.",
    )

    def mem_txns(name):
        return results[name].report.interconnect_stats["memory_transactions"]

    def hit_rate(name):
        return results[name].report.cache_hit_rate()

    for pes in pe_counts:
        baseline = mem_txns(f"off-p{pes}-s1")
        for policy in POLICIES:
            # An enabled L1 must strictly remove shared-memory traffic on
            # the sequential sweep.
            assert mem_txns(f"{policy}-p{pes}-s1") < baseline
        # The write-back cache absorbs write traffic the write-through one
        # forwards, so it can never do worse on the sequential sweep.
        assert (mem_txns(f"write_back-p{pes}-s1")
                <= mem_txns(f"write_through-p{pes}-s1"))
    for topology in TOPOLOGIES:
        # The L1 layer must remove shared-memory traffic on every topology,
        # and the stencil results stay bit-identical (raise_for_status
        # above already enforced the workload's reference check).
        assert (mem_txns(f"{topology}-wb-s1")
                < mem_txns(f"{topology}-off-s1"))
        assert (results[f"{topology}-wb-s1"].report.results
                == results[f"{topology}-off-s1"].report.results)
    if not quick:
        sets, ways, line_bytes = GEOMETRIES[0]  # capacity-starved point
        small = f"geom{sets}x{ways}x{line_bytes}"
        # With a cache too small for the working set, the line-hostile
        # stride must hit strictly less than the sequential sweep.
        assert hit_rate(f"{small}-s17") < hit_rate(f"{small}-s1")
        # And growing the cache recovers the hit rate.
        big_sets, big_ways, big_line = GEOMETRIES[-1]
        big = f"geom{big_sets}x{big_ways}x{big_line}"
        assert hit_rate(f"{big}-s1") >= hit_rate(f"{small}-s1")
