"""E1 — the paper's headline result (Section 4).

"Comparing the simulation speed of 4 ISSs with one memory and interconnect
and this of 4 ISSs with interconnect and 4 memories we found a degradation
of simulation speed of 20%."

The bench builds both platforms (cycle-driven co-simulation mode, GSM
encoder workload on every processing element, dynamic frame buffers managed
through the shared-memory wrappers) and reports the simulation speed of each
and the relative degradation.  The encoded parameters are checked against
the pure-Python reference encoder, so both platforms do provably identical
application work.
"""

from __future__ import annotations

import pytest

from repro.soc import Platform, PlatformConfig, speed_degradation
from repro.sw.gsm import (
    PLACEMENT_STRIPED,
    build_gsm_tasks,
    check_platform_results,
    make_gsm_channels,
    reference_encode,
)

from common import emit, format_rows

#: Workload size: 4 channels x FRAMES frames of speech-like input.
NUM_PES = 4
FRAMES = 2
#: Per-cycle host work of one ISS versus one memory wrapper FSM (see
#: EXPERIMENTS.md for the calibration discussion).
PE_TICK_WORK = 12
MEM_TICK_WORK = 4


def _run_configuration(num_memories: int, channels, reference):
    config = PlatformConfig(
        num_pes=NUM_PES,
        num_memories=num_memories,
        idle_tick_memories=True,
        idle_tick_work=MEM_TICK_WORK,
        pe_tick_work=PE_TICK_WORK,
    )
    platform = Platform(config)
    placement = PLACEMENT_STRIPED if num_memories > 1 else None
    tasks = (build_gsm_tasks(channels, placement=placement) if placement
             else build_gsm_tasks(channels))
    platform.add_tasks(tasks)
    report = platform.run()
    assert report.all_pes_finished, "all PEs must finish their GSM channels"
    assert check_platform_results(report.results, reference), (
        "platform-encoded GSM parameters must match the reference encoder"
    )
    return report


@pytest.fixture(scope="module")
def gsm_workload():
    channels = make_gsm_channels(NUM_PES, FRAMES, seed=42)
    return channels, reference_encode(channels)


def test_e1_gsm_speed_degradation(benchmark, gsm_workload):
    channels, reference = gsm_workload
    results = {}

    def run_both():
        results["one"] = _run_configuration(1, channels, reference)
        results["four"] = _run_configuration(4, channels, reference)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    one, four = results["one"], results["four"]
    degradation = speed_degradation(one, four)
    rows = [
        {
            "platform": "4 ISS + interconnect + 1 shared memory",
            "sim cycles": one.simulated_cycles,
            "wall s": round(one.wallclock_seconds, 3),
            "speed (cycles/s)": round(one.simulation_speed),
        },
        {
            "platform": "4 ISS + interconnect + 4 shared memories",
            "sim cycles": four.simulated_cycles,
            "wall s": round(four.wallclock_seconds, 3),
            "speed (cycles/s)": round(four.simulation_speed),
        },
    ]
    emit(
        "e1_gsm_degradation",
        format_rows(rows)
        + f"\n\nmeasured degradation: {degradation * 100:.1f}%"
        + "\npaper (Section 4):    20%",
    )

    # Shape check: adding three memories degrades speed, by the same order of
    # magnitude as the paper reports (we accept a generous band because the
    # absolute ISS/FSM evaluation-cost ratio is host dependent).
    assert 0.05 <= degradation <= 0.45
