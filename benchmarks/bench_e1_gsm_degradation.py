"""E1 — the paper's headline result (Section 4).

"Comparing the simulation speed of 4 ISSs with one memory and interconnect
and this of 4 ISSs with interconnect and 4 memories we found a degradation
of simulation speed of 20%."

The bench declares both platforms of Section 4 as scenarios over the
``gsm_encode`` registry workload (cycle-driven co-simulation mode, one GSM
encoder channel per processing element, dynamic frame buffers managed
through the shared-memory wrappers) and runs them through the experiment
runner, reporting the simulation speed of each and the relative
degradation.  The workload's built-in check verifies the encoded parameters
against the pure-Python reference encoder, so both platforms do provably
identical application work.
"""

from __future__ import annotations

from repro.api import ExperimentRunner, PerfRecorder, PlatformBuilder, Scenario
from repro.soc import speed_degradation

from common import emit, format_rows

#: Workload size: 4 channels x FRAMES frames of speech-like input.
NUM_PES = 4
FRAMES = 2
#: Per-cycle host work of one ISS versus one memory wrapper FSM (see
#: EXPERIMENTS.md for the calibration discussion).
PE_TICK_WORK = 12
MEM_TICK_WORK = 4


def make_scenario(num_memories: int, frames: int) -> Scenario:
    config = (PlatformBuilder()
              .pes(NUM_PES)
              .wrapper_memories(num_memories)
              .cycle_driven(memory_work=MEM_TICK_WORK, pe_work=PE_TICK_WORK)
              .build())
    return Scenario(
        name=f"gsm-M{num_memories}",
        config=config,
        workload="gsm_encode",
        params={"frames": frames, "seed": 42},
    )


def test_e1_gsm_speed_degradation(benchmark, request):
    frames = 1 if request.config.getoption("--quick") else FRAMES
    scenarios = [make_scenario(1, frames), make_scenario(4, frames)]
    collected = {}

    def run_both():
        # Serial in-process execution: the metric is host wall-clock speed,
        # so the two runs must not compete for host cycles.  The timed
        # region includes workload construction (channels + reference
        # encoding); the asserted metric uses report.wallclock_seconds,
        # which covers the simulation alone.
        runner = ExperimentRunner(scenarios,
                                  recorder=PerfRecorder("e1_gsm_degradation"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    results = collected["results"]
    for result in results:
        result.raise_for_status()
    one, four = results[0].report, results[1].report
    degradation = speed_degradation(one, four)
    rows = [
        {
            "platform": "4 ISS + interconnect + 1 shared memory",
            "sim cycles": one.simulated_cycles,
            "wall s": round(one.wallclock_seconds, 3),
            "speed (cycles/s)": round(one.simulation_speed),
        },
        {
            "platform": "4 ISS + interconnect + 4 shared memories",
            "sim cycles": four.simulated_cycles,
            "wall s": round(four.wallclock_seconds, 3),
            "speed (cycles/s)": round(four.simulation_speed),
        },
    ]
    emit(
        "e1_gsm_degradation",
        format_rows(rows)
        + f"\n\nmeasured degradation: {degradation * 100:.1f}%"
        + "\npaper (Section 4):    20%",
    )

    # Shape check: adding three memories degrades speed, by the same order of
    # magnitude as the paper reports (we accept a generous band because the
    # absolute ISS/FSM evaluation-cost ratio is host dependent).
    assert 0.05 <= degradation <= 0.45
