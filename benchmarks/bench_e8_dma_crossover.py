"""E8 — DMA offload crossover: core-driven memcpy vs. engine + overlap.

``repro.dev`` adds DMA engines as first-class fabric masters.  This bench
runs the ``dma_memcpy`` registry workload in both modes over a buffer-size
sweep, per interconnect topology:

* ``mode="pe"``: the core copies with its own burst transfers, then runs
  its local compute serially;
* ``mode="dma"``: the core programs a dedicated engine (one burst write),
  runs the same compute while the engine moves the data, and blocks on
  the completion interrupt.

Destination buffers are asserted bit-identical between modes at every
point (the workload's reference check also verifies them against the
generated data).  Reported per point: simulated cycles for both modes and
the offload speedup; every point lands in ``BENCH_kernel.json`` through
:class:`~repro.api.perf.PerfRecorder`, so the CI perf gate tracks the
crossover shape over time.  Headline check: with enough compute to
overlap (~4096 cycles), the DMA path must win at the largest buffer on
every topology.
"""

from __future__ import annotations

from repro.api import (
    ExperimentRunner,
    PerfRecorder,
    PlatformBuilder,
    Scenario,
)

from common import emit, format_rows

PES = 2
MEMORIES = 2
COMPUTE_CYCLES = 4096
SIZES = [64, 256, 1024]
TOPOLOGIES = ["shared_bus", "crossbar", "mesh"]
QUICK_SIZES = [64, 256]
QUICK_TOPOLOGIES = ["shared_bus"]


def _scenario(topology, mode, words):
    builder = PlatformBuilder().pes(PES).wrapper_memories(MEMORIES)
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh()
    if mode == "dma":
        builder = builder.dma(PES)
    return Scenario(
        name=f"{topology}-{mode}-{words}w",
        config=builder.build(),
        workload="dma_memcpy",
        params={"words": words, "mode": mode,
                "compute_cycles": COMPUTE_CYCLES, "seed": 7},
        seed=7,
    )


def make_scenarios(topologies, sizes):
    return [_scenario(topology, mode, words)
            for topology in topologies
            for words in sizes
            for mode in ("pe", "dma")]


def test_e8_dma_crossover(benchmark, request):
    quick = request.config.getoption("--quick")
    topologies = QUICK_TOPOLOGIES if quick else TOPOLOGIES
    sizes = QUICK_SIZES if quick else SIZES
    scenarios = make_scenarios(topologies, sizes)
    collected = {}

    def run_sweep():
        runner = ExperimentRunner(
            scenarios, recorder=PerfRecorder("e8_dma_crossover"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = {result.scenario: result for result in collected["results"]}
    for result in results.values():
        result.raise_for_status()

    rows = []
    for topology in topologies:
        for words in sizes:
            pe = results[f"{topology}-pe-{words}w"].report
            dma = results[f"{topology}-dma-{words}w"].report
            # The offload must not change a single destination word.
            assert pe.results == dma.results
            engines = [d for d in dma.device_reports if d["kind"] == "dma"]
            assert sum(e["words_copied"] for e in engines) == PES * words
            assert all(e["errors"] == 0 for e in engines)
            rows.append({
                "topology": topology,
                "words/PE": words,
                "pe cycles": pe.simulated_cycles,
                "dma cycles": dma.simulated_cycles,
                "speedup": f"{pe.simulated_cycles / dma.simulated_cycles:.2f}x",
            })

    emit(
        "e8_dma_crossover",
        format_rows(rows)
        + f"\n\ndestination buffers bit-identical per point; compute "
        f"overlap {COMPUTE_CYCLES} cycles per PE.",
    )

    for topology in topologies:
        largest = sizes[-1]
        pe = results[f"{topology}-pe-{largest}w"].report
        dma = results[f"{topology}-dma-{largest}w"].report
        # With ~4k compute cycles to hide the copy behind, offloading the
        # largest buffer must beat the core-driven copy on every topology.
        assert dma.simulated_cycles < pe.simulated_cycles, (
            f"{topology}: dma {dma.simulated_cycles} >= "
            f"pe {pe.simulated_cycles} at {largest} words"
        )
