"""E3 — claim (II) of Section 1: the wrapper stays cycle-accurate.

The wrapper models timing with configurable delay parameters ("which can be
dynamic and data dependent").  This bench checks that the simulated cycle
counts are *exactly* the ones the delay parameters prescribe:

* per-operation slave cycles observed on the bus (via the
  :func:`repro.api.drive` micro-bench helper) match the FSM schedule
  computed from the ``WrapperDelays`` for every opcode and transfer length;
* the same transaction trace replayed with SRAM-like and SDRAM-like delay
  sets scales exactly with the parameter difference;
* a data-dependent delay hook changes the observed latency by exactly the
  hook's value.
"""

from __future__ import annotations

from repro.api import PerfRecorder, PerfTimer, drive
from repro.memory import MemCommand, MemOpcode
from repro.wrapper import SharedMemoryWrapper, WrapperDelays, WrapperFsm

from common import emit, format_rows


def expected_cycles(delays, command, words=0, byte_count=0):
    """Reference cycle count: FSM schedule + one cycle per command word."""
    fsm = WrapperFsm(delays)
    return len(fsm.schedule_for(command.opcode, words, byte_count)) + len(
        command.to_words()
    )


OPERATIONS = [
    ("ALLOC 64 x u32", MemCommand(MemOpcode.ALLOC, dim=64), 0, 256),
    ("WRITE scalar", MemCommand(MemOpcode.WRITE, vptr=0, offset=1, data=7), 0, 4),
    ("READ scalar", MemCommand(MemOpcode.READ, vptr=0, offset=1), 0, 4),
    ("READ_ARRAY 16", MemCommand(MemOpcode.READ_ARRAY, vptr=0, dim=16), 16, 64),
    ("READ_ARRAY 64", MemCommand(MemOpcode.READ_ARRAY, vptr=0, dim=64), 64, 256),
    ("RESERVE", MemCommand(MemOpcode.RESERVE, vptr=0), 0, 0),
    ("RELEASE", MemCommand(MemOpcode.RELEASE, vptr=0), 0, 0),
    ("FREE", MemCommand(MemOpcode.FREE, vptr=0), 0, 0),
]


def run_trace(delays):
    wrapper = SharedMemoryWrapper(delays=delays)
    rows = []
    total = 0
    for label, command, words, byte_count in OPERATIONS:
        observed = drive(wrapper, command).cycles
        expected = expected_cycles(delays, command, words, byte_count)
        rows.append({
            "operation": label,
            "observed cycles": observed,
            "expected cycles": expected,
            "match": "yes" if observed == expected else "NO",
        })
        total += observed
    return rows, total


def test_e3_cycle_accuracy(benchmark):
    results = {}

    def run_all():
        recorder = PerfRecorder("e3_accuracy")
        traces = [
            ("sram", WrapperDelays.sram_like()),
            ("sdram", WrapperDelays.sdram_like()),
            ("hooked",
             WrapperDelays(data_dependent=lambda op, nbytes: nbytes // 32)),
        ]
        for label, delays in traces:
            with PerfTimer() as timer:
                results[label] = run_trace(delays)
            recorder.record_measurement(
                f"trace-{label}", timer.seconds,
                simulated_cycles=results[label][1])
        recorder.flush()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    sram_rows, sram_total = results["sram"]
    sdram_rows, sdram_total = results["sdram"]
    hooked_rows, hooked_total = results["hooked"]

    emit(
        "e3_accuracy",
        "SRAM-like delay parameters:\n" + format_rows(sram_rows)
        + "\n\nSDRAM-like delay parameters:\n" + format_rows(sdram_rows)
        + "\n\nwith data-dependent hook (+bytes/32 cycles):\n"
        + format_rows(hooked_rows)
        + f"\n\ntotal trace cycles: sram={sram_total} sdram={sdram_total} "
        f"hooked={hooked_total}",
    )

    # Accuracy: every operation's observed latency equals the configured one.
    for rows in (sram_rows, sdram_rows, hooked_rows):
        assert all(row["match"] == "yes" for row in rows)
    # Slower parameters must give strictly more cycles for the same trace.
    assert sdram_total > sram_total
    assert hooked_total > sram_total
