"""E9 — sanitizer overhead: the same workload with ``repro.check`` on/off.

The sanitizers promise *semantic* transparency (same simulated time, same
scheduler counters — ``tests/check/test_bit_identical.py`` enforces it);
this bench tracks their *host* cost.  The ``producer_consumer`` registry
workload runs per topology with and without ``.sanitize()``; both rows
land in ``BENCH_kernel.json`` (the sanitized one as
``<topology>-sanitized``), so the perf trajectory shows the overhead
factor over time.  Headline check: simulated cycles are identical per
pair, and every run stays sanitizer-clean.
"""

from __future__ import annotations

from repro.api import (
    ExperimentRunner,
    PerfRecorder,
    PlatformBuilder,
    Scenario,
)

from common import emit, format_rows

PES = 2
NUM_ITEMS = 256
TOPOLOGIES = ["shared_bus", "crossbar", "mesh"]
QUICK_NUM_ITEMS = 32
QUICK_TOPOLOGIES = ["shared_bus"]


def _scenario(topology, sanitize, num_items):
    builder = PlatformBuilder().pes(PES).wrapper_memories(1)
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh()
    if sanitize:
        builder = builder.sanitize()
    suffix = "sanitized" if sanitize else "plain"
    return Scenario(
        name=f"{topology}-{suffix}",
        config=builder.build(),
        workload="producer_consumer",
        params={"num_items": num_items, "seed": 7},
        seed=7,
    )


def make_scenarios(topologies, num_items):
    return [_scenario(topology, sanitize, num_items)
            for topology in topologies
            for sanitize in (False, True)]


def test_e9_sanitizer_overhead(benchmark, request):
    quick = request.config.getoption("--quick")
    topologies = QUICK_TOPOLOGIES if quick else TOPOLOGIES
    num_items = QUICK_NUM_ITEMS if quick else NUM_ITEMS
    scenarios = make_scenarios(topologies, num_items)
    collected = {}

    def run_sweep():
        runner = ExperimentRunner(
            scenarios, recorder=PerfRecorder("e9_sanitizer_overhead"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = {result.scenario: result for result in collected["results"]}
    for result in results.values():
        result.raise_for_status()

    rows = []
    for topology in topologies:
        plain = results[f"{topology}-plain"].report
        sanitized = results[f"{topology}-sanitized"].report
        # Transparency: the sanitized run is the same simulation.
        assert sanitized.simulated_cycles == plain.simulated_cycles
        assert sanitized.results == plain.results
        assert sanitized.sanitizer_reports == []
        overhead = (sanitized.wallclock_seconds / plain.wallclock_seconds
                    if plain.wallclock_seconds > 0 else float("nan"))
        rows.append({
            "topology": topology,
            "cycles": plain.simulated_cycles,
            "plain s": f"{plain.wallclock_seconds:.3f}",
            "sanitized s": f"{sanitized.wallclock_seconds:.3f}",
            "overhead": f"{overhead:.2f}x",
        })

    emit(
        "e9_sanitizer_overhead",
        format_rows(rows)
        + "\n\nsimulated cycles and results identical per pair; sanitized "
        "runs clean.",
    )
