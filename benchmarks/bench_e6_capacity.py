"""E6 — claim (I) of Section 1: complex applications with huge dynamic data.

The wrapper lets the simulated software allocate as much dynamic data as the
*host* can hold, without pre-sizing a simulated memory table.  This bench
runs a growing-allocation workload (a simulated video-style double buffer
that doubles in size every step, driven through :func:`repro.api.drive`)
against:

* the host-backed wrapper with an (artificially) huge simulated capacity,
* the fully-modelled baseline, whose memory table must be pre-sized and
  whose Python storage is allocated up front.

It reports, per step, the simulated bytes live, the host bytes actually held
by the wrapper's host layer, and whether the model could satisfy the
allocation.  The wrapper also demonstrates the finite-size mechanism: with a
small configured capacity the same workload is refused at the right point.
"""

from __future__ import annotations

from repro.api import PerfRecorder, PerfTimer, drive
from repro.memory import DataType, MemCommand, MemOpcode, ModeledDynamicMemory
from repro.wrapper import SharedMemoryWrapper

from common import emit, format_rows

#: Allocation schedule: element counts of successive buffers (UINT32).
STEPS = [1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
#: Pre-sized capacity of the fully-modelled baseline (1 MiB table).
MODELED_TABLE_BYTES = 1 << 20
#: Small capacity used to demonstrate the wrapper's finite-size modelling.
SMALL_CAPACITY_BYTES = 256 * 1024


def grow_and_release(memory):
    """Run the growing double-buffer schedule; returns per-step rows."""
    rows = []
    previous = None
    for step, elements in enumerate(STEPS):
        response = drive(memory, MemCommand(MemOpcode.ALLOC, dim=elements,
                                            data_type=DataType.UINT32)).response
        ok = response.ok
        alloc_status = memory.last_status.name
        vptr = response.data if ok else None
        if ok:
            drive(memory, MemCommand(MemOpcode.WRITE, vptr=vptr,
                                     offset=elements - 1, data=step))
        if previous is not None:
            drive(memory, MemCommand(MemOpcode.FREE, vptr=previous))
        # The old buffer is gone either way; only a successful allocation
        # leaves a live buffer for the next step to replace.
        previous = vptr if ok else None
        rows.append({
            "step": step,
            "requested bytes": elements * 4,
            "granted": "yes" if ok else "no (" + alloc_status + ")",
            "simulated live bytes": memory.used_bytes(),
        })
    if previous is not None:
        drive(memory, MemCommand(MemOpcode.FREE, vptr=previous))
    return rows


def test_e6_capacity(benchmark):
    results = {}

    def run_all():
        recorder = PerfRecorder("e6_capacity")
        wrapper = SharedMemoryWrapper(capacity_bytes=1 << 30)
        with PerfTimer() as timer:
            results["wrapper_rows"] = grow_and_release(wrapper)
        recorder.record_measurement("wrapper-1GiB", timer.seconds)
        results["wrapper_host"] = wrapper.host.stats.as_dict()
        results["wrapper_leak_free"] = wrapper.host.check_all_freed()

        modeled = ModeledDynamicMemory(MODELED_TABLE_BYTES)
        with PerfTimer() as timer:
            results["modeled_rows"] = grow_and_release(modeled)
        recorder.record_measurement("modeled-1MiB", timer.seconds)

        small = SharedMemoryWrapper(capacity_bytes=SMALL_CAPACITY_BYTES)
        with PerfTimer() as timer:
            results["small_rows"] = grow_and_release(small)
        recorder.record_measurement("wrapper-small-capacity", timer.seconds)
        recorder.flush()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    host = results["wrapper_host"]
    emit(
        "e6_capacity",
        "host-backed wrapper (capacity 1 GiB simulated):\n"
        + format_rows(results["wrapper_rows"])
        + f"\n\nhost layer: peak live bytes = {host['peak_live_bytes']}, "
        f"allocations = {host['alloc_calls']}, all freed = "
        f"{results['wrapper_leak_free']}"
        + "\n\nfully-modelled baseline (1 MiB pre-sized table):\n"
        + format_rows(results["modeled_rows"])
        + f"\n\nwrapper with small simulated capacity ({SMALL_CAPACITY_BYTES} B), "
        "demonstrating finite-size modelling:\n"
        + format_rows(results["small_rows"]),
    )

    # Shape checks: the wrapper satisfies every step of the growing workload
    # (claim I), the pre-sized table cannot hold the large buffers, and the
    # small-capacity wrapper refuses allocations beyond its configured size.
    assert all(row["granted"] == "yes" for row in results["wrapper_rows"])
    assert results["wrapper_leak_free"]
    assert any(row["granted"] != "yes" for row in results["modeled_rows"])
    assert any("ERR_FULL" in row["granted"] for row in results["small_rows"])
    # Host memory held at any time stays close to the live double buffer
    # (old + new), never the sum of all steps.
    assert host["peak_live_bytes"] <= (STEPS[-1] + STEPS[-2]) * 4 + 4096
