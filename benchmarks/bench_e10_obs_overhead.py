"""E10 — observability overhead: the same workload with ``repro.obs`` on/off.

The obs layer promises *semantic* transparency (same simulated time, same
scheduler counters — ``tests/obs/test_obs_bit_identical.py`` enforces it);
this bench tracks its *host* cost.  The ``producer_consumer`` registry
workload runs per topology with and without ``.trace().metrics()``; both
rows land in ``BENCH_kernel.json`` (the traced one as
``<topology>-traced``), so the perf trajectory shows the overhead factor
over time.  Headline check: simulated cycles and workload results are
identical per pair.
"""

from __future__ import annotations

from repro.api import (
    ExperimentRunner,
    PerfRecorder,
    PlatformBuilder,
    Scenario,
)

from common import emit, format_rows

PES = 2
NUM_ITEMS = 256
INTERVAL_CYCLES = 512
TOPOLOGIES = ["shared_bus", "crossbar", "mesh"]
QUICK_NUM_ITEMS = 32
QUICK_TOPOLOGIES = ["shared_bus"]


def _scenario(topology, traced, num_items):
    builder = PlatformBuilder().pes(PES).wrapper_memories(1)
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh()
    if traced:
        builder = builder.trace().metrics(interval_cycles=INTERVAL_CYCLES)
    suffix = "traced" if traced else "plain"
    return Scenario(
        name=f"{topology}-{suffix}",
        config=builder.build(),
        workload="producer_consumer",
        params={"num_items": num_items, "seed": 7},
        seed=7,
    )


def make_scenarios(topologies, num_items):
    return [_scenario(topology, traced, num_items)
            for topology in topologies
            for traced in (False, True)]


def test_e10_obs_overhead(benchmark, request):
    quick = request.config.getoption("--quick")
    topologies = QUICK_TOPOLOGIES if quick else TOPOLOGIES
    num_items = QUICK_NUM_ITEMS if quick else NUM_ITEMS
    scenarios = make_scenarios(topologies, num_items)
    collected = {}

    def run_sweep():
        runner = ExperimentRunner(
            scenarios, recorder=PerfRecorder("e10_obs_overhead"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = {result.scenario: result for result in collected["results"]}
    for result in results.values():
        result.raise_for_status()

    rows = []
    for topology in topologies:
        plain = results[f"{topology}-plain"].report
        traced = results[f"{topology}-traced"].report
        # Transparency: the traced run is the same simulation.
        assert traced.simulated_cycles == plain.simulated_cycles
        assert traced.results == plain.results
        assert traced.obs_summary is not None
        assert traced.obs_summary["trace"]["events"] > 0
        assert traced.timeseries
        overhead = (traced.wallclock_seconds / plain.wallclock_seconds
                    if plain.wallclock_seconds > 0 else float("nan"))
        rows.append({
            "topology": topology,
            "cycles": plain.simulated_cycles,
            "events": traced.obs_summary["trace"]["events"],
            "plain s": f"{plain.wallclock_seconds:.3f}",
            "traced s": f"{traced.wallclock_seconds:.3f}",
            "overhead": f"{overhead:.2f}x",
        })

    emit(
        "e10_obs_overhead",
        format_rows(rows)
        + "\n\nsimulated cycles and results identical per pair; trace + "
        "metrics recorded without perturbing the run.",
    )
