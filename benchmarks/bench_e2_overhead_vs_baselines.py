"""E2 — claim (III) of Section 1: the wrapper's overhead is low.

Compares three ways of giving the simulated software dynamic data, running
the *same* allocation-heavy workload (GSM frame buffers plus an
allocate/copy/free churn loop):

* ``wrapper``  — the paper's host-backed dynamic shared memory wrapper;
* ``modeled``  — the traditional fully-modelled dynamic memory (allocator
  metadata simulated inside the memory table);
* ``static``   — a lower bound: the same data movement against a plain
  static memory with pre-allocated buffers (no dynamic management at all).

Reported: host wall-clock, simulated cycles and simulation speed.  The shape
the paper claims: wrapper ≈ static (low overhead), modeled clearly slower.
"""

from __future__ import annotations

import time

import pytest

from repro.interconnect import SharedBus
from repro.kernel import Module, Simulator
from repro.memory import (
    DataType,
    LatencyModel,
    MemStatus,
    REGISTER_WINDOW_BYTES,
    StaticMemory,
)
from repro.soc import MemoryKind, Platform, PlatformConfig
from repro.sw.gsm import FRAME_SAMPLES, PARAMETERS_PER_FRAME, generate_speech_like

from common import emit, format_rows

CHURN_ITERATIONS = 40
CHURN_BLOCK_WORDS = 64
GSM_FRAMES = 2


def make_dynamic_workload():
    """Task: GSM-like frame buffer management plus an alloc/copy/free churn."""
    samples = generate_speech_like(GSM_FRAMES, seed=9)

    def task(ctx):
        smem = ctx.smem(0)
        # Frame-buffer phase (the GSM traffic pattern without the codec math,
        # so the measurement isolates the memory-model cost).
        for frame in range(GSM_FRAMES):
            start = frame * FRAME_SAMPLES
            frame_samples = [v & 0xFFFF for v in samples[start:start + FRAME_SAMPLES]]
            input_vptr = yield from smem.alloc(FRAME_SAMPLES, DataType.INT16)
            output_vptr = yield from smem.alloc(PARAMETERS_PER_FRAME, DataType.UINT16)
            yield from smem.write_array(input_vptr, frame_samples)
            fetched = yield from smem.read_array(input_vptr, FRAME_SAMPLES)
            yield from smem.write_array(output_vptr, fetched[:PARAMETERS_PER_FRAME])
            yield from smem.free(input_vptr)
            yield from smem.free(output_vptr)
        # Churn phase: repeated allocate / scatter writes / copy / free.
        survivors = []
        for iteration in range(CHURN_ITERATIONS):
            vptr = yield from smem.alloc(CHURN_BLOCK_WORDS, DataType.UINT32)
            yield from smem.write(vptr, iteration, offset=iteration % CHURN_BLOCK_WORDS)
            if iteration % 3 == 2 and survivors:
                victim = survivors.pop(0)
                yield from smem.memcpy(vptr, victim, 8)
                yield from smem.free(victim)
            survivors.append(vptr)
        for vptr in survivors:
            yield from smem.free(vptr)
        return ctx.smem(0).calls

    return task


def run_dynamic(memory_kind: MemoryKind):
    config = PlatformConfig(num_pes=1, num_memories=1, memory_kind=memory_kind,
                            memory_capacity_bytes=1 << 20)
    platform = Platform(config)
    platform.add_task(make_dynamic_workload())
    return platform.run()


class StaticWorkloadPe(Module):
    """The same data movement against a pre-allocated static memory."""

    def __init__(self, name, port, base, parent=None):
        super().__init__(name, parent)
        self.port = port
        self.base = base
        self.finished = False
        self.add_process(self._run, name="program")

    def _run(self):
        samples = generate_speech_like(GSM_FRAMES, seed=9)
        for frame in range(GSM_FRAMES):
            start = frame * FRAME_SAMPLES
            payload = [v & 0xFFFF for v in samples[start:start + FRAME_SAMPLES]]
            yield from self.port.burst_write(self.base, payload)
            fetched = yield from self.port.burst_read(self.base, FRAME_SAMPLES)
            yield from self.port.burst_write(
                self.base + 4 * FRAME_SAMPLES,
                fetched.burst_data[:PARAMETERS_PER_FRAME],
            )
        scratch = self.base + 0x2000
        for iteration in range(CHURN_ITERATIONS):
            address = scratch + 4 * (iteration % CHURN_BLOCK_WORDS)
            yield from self.port.write(address, iteration)
            if iteration % 3 == 2:
                data = yield from self.port.burst_read(scratch, 8)
                yield from self.port.burst_write(scratch + 0x100, data.burst_data)
        self.finished = True


def run_static():
    top = Module("static_top")
    bus = SharedBus("bus", period=10, parent=top)
    memory = StaticMemory(1 << 16, latency=LatencyModel())
    bus.attach_slave("ram", 0x1000_0000, 1 << 16, memory)
    pe = StaticWorkloadPe("pe0", bus.master_port(0), 0x1000_0000, parent=top)
    sim = Simulator(top)
    wall_start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - wall_start
    assert pe.finished
    return {"wall": wall, "cycles": sim.now // 10}


def test_e2_overhead_vs_baselines(benchmark):
    results = {}

    def run_all():
        results["wrapper"] = run_dynamic(MemoryKind.WRAPPER)
        results["modeled"] = run_dynamic(MemoryKind.MODELED)
        results["static"] = run_static()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    wrapper, modeled, static = results["wrapper"], results["modeled"], results["static"]
    rows = [
        {
            "memory model": "host-backed wrapper (paper)",
            "sim cycles": wrapper.simulated_cycles,
            "wall s": round(wrapper.wallclock_seconds, 4),
            "speed (cycles/s)": round(wrapper.simulation_speed),
        },
        {
            "memory model": "fully-modelled dynamic memory",
            "sim cycles": modeled.simulated_cycles,
            "wall s": round(modeled.wallclock_seconds, 4),
            "speed (cycles/s)": round(modeled.simulation_speed),
        },
        {
            "memory model": "static table (no dynamic data)",
            "sim cycles": static["cycles"],
            "wall s": round(static["wall"], 4),
            "speed (cycles/s)": round(static["cycles"] / max(static["wall"], 1e-9)),
        },
    ]
    wrapper_vs_modeled = modeled.wallclock_seconds / max(wrapper.wallclock_seconds, 1e-9)
    emit(
        "e2_overhead_vs_baselines",
        format_rows(rows)
        + f"\n\nfully-modelled / wrapper wall-clock ratio: {wrapper_vs_modeled:.2f}x"
        + "\npaper claim: the host-backed wrapper introduces very low overhead",
    )

    # Shape checks: the wrapper needs fewer simulated cycles than the
    # fully-modelled baseline for the same dynamic workload, and both models
    # agree functionally (checked elsewhere); the modelled baseline must not
    # be faster than the wrapper in simulated time.
    assert wrapper.all_pes_finished and modeled.all_pes_finished
    assert wrapper.simulated_cycles < modeled.simulated_cycles
