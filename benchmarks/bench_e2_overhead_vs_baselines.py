"""E2 — claim (III) of Section 1: the wrapper's overhead is low.

Compares three ways of giving the simulated software dynamic data, running
the *same* allocation-heavy workload (GSM frame buffers plus an
allocate/copy/free churn loop — the ``alloc_churn`` registry workload):

* ``wrapper``  — the paper's host-backed dynamic shared memory wrapper;
* ``modeled``  — the traditional fully-modelled dynamic memory (allocator
  metadata simulated inside the memory table);
* ``static``   — a lower bound: the same data movement against a plain
  static memory with pre-allocated buffers (no dynamic management at all).

The two dynamic variants are one scenario grid over ``memory_kind``; the
static lower bound has no dynamic memory to model, so it stays a bare
kernel-level testbench.  Reported: host wall-clock, simulated cycles and
simulation speed.  The shape the paper claims: wrapper ≈ static (low
overhead), modeled clearly slower.
"""

from __future__ import annotations

import time

from repro.api import ExperimentRunner, PerfRecorder, PlatformBuilder, scenario_grid
from repro.interconnect import SharedBus
from repro.kernel import Module, Simulator
from repro.memory import LatencyModel, StaticMemory
from repro.soc import MemoryKind
from repro.sw.gsm import FRAME_SAMPLES, PARAMETERS_PER_FRAME, generate_speech_like

from common import emit, format_rows

CHURN_ITERATIONS = 40
CHURN_BLOCK_WORDS = 64
GSM_FRAMES = 2
CHURN_SEED = 9


def make_dynamic_scenarios(iterations: int):
    """One scenario per dynamic-memory model, same ``alloc_churn`` workload."""
    base = (PlatformBuilder()
            .pes(1)
            .wrapper_memories(1)
            .capacity(1 << 20)
            .build())
    return scenario_grid(
        "churn", base, "alloc_churn",
        config_grid={"memory_kind": [MemoryKind.WRAPPER, MemoryKind.MODELED]},
        params={"iterations": iterations, "block_words": CHURN_BLOCK_WORDS,
                "gsm_frames": GSM_FRAMES, "seed": CHURN_SEED},
    )


class StaticWorkloadPe(Module):
    """The same data movement against a pre-allocated static memory."""

    def __init__(self, name, port, base, iterations, parent=None):
        super().__init__(name, parent)
        self.port = port
        self.base = base
        self.iterations = iterations
        self.finished = False
        self.add_process(self._run, name="program")

    def _run(self):
        samples = generate_speech_like(GSM_FRAMES, seed=CHURN_SEED)
        for frame in range(GSM_FRAMES):
            start = frame * FRAME_SAMPLES
            payload = [v & 0xFFFF for v in samples[start:start + FRAME_SAMPLES]]
            yield from self.port.burst_write(self.base, payload)
            fetched = yield from self.port.burst_read(self.base, FRAME_SAMPLES)
            yield from self.port.burst_write(
                self.base + 4 * FRAME_SAMPLES,
                fetched.burst_data[:PARAMETERS_PER_FRAME],
            )
        scratch = self.base + 0x2000
        for iteration in range(self.iterations):
            address = scratch + 4 * (iteration % CHURN_BLOCK_WORDS)
            yield from self.port.write(address, iteration)
            if iteration % 3 == 2:
                data = yield from self.port.burst_read(scratch, 8)
                yield from self.port.burst_write(scratch + 0x100, data.burst_data)
        self.finished = True


def run_static(iterations: int):
    top = Module("static_top")
    bus = SharedBus("bus", period=10, parent=top)
    memory = StaticMemory(1 << 16, latency=LatencyModel())
    bus.attach_slave("ram", 0x1000_0000, 1 << 16, memory)
    pe = StaticWorkloadPe("pe0", bus.master_port(0), 0x1000_0000, iterations,
                          parent=top)
    sim = Simulator(top)
    wall_start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - wall_start
    assert pe.finished
    return {"wall": wall, "cycles": sim.now // 10}


def test_e2_overhead_vs_baselines(benchmark, request):
    iterations = 10 if request.config.getoption("--quick") else CHURN_ITERATIONS
    scenarios = make_dynamic_scenarios(iterations)
    results = {}

    def run_all():
        recorder = PerfRecorder("e2_overhead_vs_baselines")
        dynamic = ExperimentRunner(scenarios, recorder=recorder).run()
        for result in dynamic:
            result.raise_for_status()
        results["wrapper"], results["modeled"] = [r.report for r in dynamic]
        results["static"] = run_static(iterations)
        recorder.record_measurement(
            "static-baseline", results["static"]["wall"],
            params={"iterations": iterations},
            simulated_cycles=results["static"]["cycles"])
        recorder.flush()
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    wrapper, modeled, static = results["wrapper"], results["modeled"], results["static"]
    rows = [
        {
            "memory model": "host-backed wrapper (paper)",
            "sim cycles": wrapper.simulated_cycles,
            "wall s": round(wrapper.wallclock_seconds, 4),
            "speed (cycles/s)": round(wrapper.simulation_speed),
        },
        {
            "memory model": "fully-modelled dynamic memory",
            "sim cycles": modeled.simulated_cycles,
            "wall s": round(modeled.wallclock_seconds, 4),
            "speed (cycles/s)": round(modeled.simulation_speed),
        },
        {
            "memory model": "static table (no dynamic data)",
            "sim cycles": static["cycles"],
            "wall s": round(static["wall"], 4),
            "speed (cycles/s)": round(static["cycles"] / max(static["wall"], 1e-9)),
        },
    ]
    wrapper_vs_modeled = modeled.wallclock_seconds / max(wrapper.wallclock_seconds, 1e-9)
    emit(
        "e2_overhead_vs_baselines",
        format_rows(rows)
        + f"\n\nfully-modelled / wrapper wall-clock ratio: {wrapper_vs_modeled:.2f}x"
        + "\npaper claim: the host-backed wrapper introduces very low overhead",
    )

    # Shape checks: the wrapper needs fewer simulated cycles than the
    # fully-modelled baseline for the same dynamic workload, and both models
    # agree functionally (checked elsewhere); the modelled baseline must not
    # be faster than the wrapper in simulated time.
    assert wrapper.all_pes_finished and modeled.all_pes_finished
    assert wrapper.simulated_cycles < modeled.simulated_cycles
