"""E4 — scaling of simulation speed with platform size (Section 3).

The paper argues the wrapper technique scales to "multiple dynamic shared
memories" and many processing elements.  This bench declares the sweep as a
scenario grid over P ∈ {1, 2, 4, 8} processing elements and M ∈ {1, 2, 4}
shared memories (cycle-driven mode, the ``gsm_encode`` registry workload
per PE) and reports the simulation speed for every point, reproducing the
trend behind the paper's single reported data point (P=4: M=1 vs M=4 →
≈20% degradation).
"""

from __future__ import annotations

from repro.api import (
    ExperimentRunner,
    PerfRecorder,
    PlatformBuilder,
    kernel_rates_table,
    scenario_grid,
)
from repro.soc import speed_degradation

from common import emit, format_rows

PE_COUNTS = [1, 2, 4, 8]
MEMORY_COUNTS = [1, 2, 4]
FRAMES = 1
PE_TICK_WORK = 12
MEM_TICK_WORK = 4


def make_scenarios(pe_counts, memory_counts):
    base = (PlatformBuilder()
            .pes(1)
            .wrapper_memories(1)
            .cycle_driven(memory_work=MEM_TICK_WORK, pe_work=PE_TICK_WORK)
            .build())
    return scenario_grid(
        "scaling", base, "gsm_encode",
        config_grid={"num_pes": pe_counts, "num_memories": memory_counts},
        params={"frames": FRAMES, "seed": 7},
    )


def test_e4_scaling_sweep(benchmark, request):
    pe_counts = [1, 2] if request.config.getoption("--quick") else PE_COUNTS
    memory_counts = MEMORY_COUNTS
    scenarios = make_scenarios(pe_counts, memory_counts)
    collected = {}

    def run_sweep():
        # Serial: every point's wall-clock must be measured on an idle host.
        # Per-point workload construction happens inside this timed region;
        # the asserted metrics use report.wallclock_seconds (simulation only).
        runner = ExperimentRunner(scenarios,
                                  recorder=PerfRecorder("e4_scaling"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = collected["results"]
    reports = {}
    for result in results:
        result.raise_for_status()
        key = (result.overrides["num_pes"], result.overrides["num_memories"])
        reports[key] = result.report

    rows = [result.row() for result in results]
    # Per-PE-count degradation of M=4 relative to M=1 (the paper's metric).
    degradation_rows = []
    for num_pes in pe_counts:
        base = reports[(num_pes, 1)]
        wide = reports[(num_pes, 4)]
        degradation_rows.append({
            "PEs": num_pes,
            "speed M=1 (c/s)": round(base.simulation_speed),
            "speed M=4 (c/s)": round(wide.simulation_speed),
            "degradation": f"{speed_degradation(base, wide) * 100:.1f}%",
        })
    emit(
        "e4_scaling",
        format_rows(rows, columns=["scenario", "num_pes", "num_memories",
                                   "simulated_cycles", "wallclock_seconds",
                                   "simulation_speed"])
        + "\n\nM=1 → M=4 degradation per PE count "
        "(paper reports ≈20% at P=4):\n"
        + format_rows(degradation_rows)
        + "\n\nkernel throughput (also recorded in BENCH_kernel.json):\n"
        + kernel_rates_table(results, bench="e4_scaling"),
    )

    # Shape checks: for every PE count, adding memories costs simulation
    # speed; the relative cost shrinks as the number of (more expensive)
    # ISS models grows.
    for num_pes in pe_counts:
        assert reports[(num_pes, 4)].simulation_speed \
            < reports[(num_pes, 1)].simulation_speed
    # The degradation-shrinks-with-PE-count trend needs the full PE range to
    # rise above host noise, so the smoke run only checks monotonicity above.
    if pe_counts == PE_COUNTS:
        small = speed_degradation(reports[(pe_counts[0], 1)],
                                  reports[(pe_counts[0], 4)])
        large = speed_degradation(reports[(pe_counts[-1], 1)],
                                  reports[(pe_counts[-1], 4)])
        assert large < small
