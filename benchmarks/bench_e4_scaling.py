"""E4 — scaling of simulation speed with platform size (Section 3).

The paper argues the wrapper technique scales to "multiple dynamic shared
memories" and many processing elements.  This bench sweeps the platform over
P ∈ {1, 2, 4, 8} processing elements and M ∈ {1, 2, 4} shared memories
(cycle-driven mode, GSM frame-buffer traffic per PE) and reports the
simulation speed for every point, reproducing the trend behind the paper's
single reported data point (P=4: M=1 vs M=4 → ≈20% degradation).
"""

from __future__ import annotations

import pytest

from repro.soc import Platform, PlatformConfig, SweepPoint, speed_degradation
from repro.sw.gsm import PLACEMENT_STRIPED, build_gsm_tasks, make_gsm_channels

from common import emit, format_rows

PE_COUNTS = [1, 2, 4, 8]
MEMORY_COUNTS = [1, 2, 4]
FRAMES = 1
PE_TICK_WORK = 12
MEM_TICK_WORK = 4


def run_point(num_pes: int, num_memories: int) -> SweepPoint:
    channels = make_gsm_channels(num_pes, FRAMES, seed=7)
    config = PlatformConfig(
        num_pes=num_pes,
        num_memories=num_memories,
        idle_tick_memories=True,
        idle_tick_work=MEM_TICK_WORK,
        pe_tick_work=PE_TICK_WORK,
    )
    platform = Platform(config)
    placement = PLACEMENT_STRIPED if num_memories > 1 else None
    tasks = (build_gsm_tasks(channels, placement=placement) if placement
             else build_gsm_tasks(channels))
    platform.add_tasks(tasks)
    report = platform.run()
    assert report.all_pes_finished
    return SweepPoint(
        label=f"P={num_pes},M={num_memories}",
        parameters={"PEs": num_pes, "memories": num_memories},
        report=report,
    )


def test_e4_scaling_sweep(benchmark):
    points = {}

    def run_sweep():
        for num_pes in PE_COUNTS:
            for num_memories in MEMORY_COUNTS:
                points[(num_pes, num_memories)] = run_point(num_pes, num_memories)
        return points

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [point.row() for point in points.values()]
    # Per-PE-count degradation of M=4 relative to M=1 (the paper's metric).
    degradation_rows = []
    for num_pes in PE_COUNTS:
        base = points[(num_pes, 1)].report
        wide = points[(num_pes, 4)].report
        degradation_rows.append({
            "PEs": num_pes,
            "speed M=1 (c/s)": round(base.simulation_speed),
            "speed M=4 (c/s)": round(wide.simulation_speed),
            "degradation": f"{speed_degradation(base, wide) * 100:.1f}%",
        })
    emit(
        "e4_scaling",
        format_rows(rows, columns=["label", "PEs", "memories", "simulated_cycles",
                                   "wallclock_seconds", "simulation_speed"])
        + "\n\nM=1 → M=4 degradation per PE count "
        "(paper reports ≈20% at P=4):\n"
        + format_rows(degradation_rows),
    )

    # Shape checks: for every PE count, adding memories costs simulation
    # speed; the relative cost shrinks as the number of (more expensive)
    # ISS models grows.
    for num_pes in PE_COUNTS:
        base = points[(num_pes, 1)].report
        wide = points[(num_pes, 4)].report
        assert wide.simulation_speed < base.simulation_speed
    small = speed_degradation(points[(1, 1)].report, points[(1, 4)].report)
    large = speed_degradation(points[(8, 1)].report, points[(8, 4)].report)
    assert large < small
