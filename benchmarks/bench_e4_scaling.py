"""E4 — scaling of simulation speed with platform size (Section 3).

The paper argues the wrapper technique scales to "multiple dynamic shared
memories" and many processing elements.  This bench declares the sweep as a
scenario grid over P ∈ {1, 2, 4, 8} processing elements and M ∈ {1, 2, 4}
shared memories (cycle-driven mode, the ``gsm_encode`` registry workload
per PE) and reports the simulation speed for every point, reproducing the
trend behind the paper's single reported data point (P=4: M=1 vs M=4 →
≈20% degradation).

A second sweep turns the interconnect *topology* into an axis: the same
``gsm_encode`` workload on shared bus x crossbar x 2D-mesh NoC at 4/8/16
PEs, comparing simulated cycles (interconnect contention), utilization and
the mesh's packet latencies — the three-way comparison the NoC subsystem
was built for.

A third sweep crosses topology with the fabric's *arbitration policy*
(round-robin, fixed-priority, weighted round-robin, TDMA): the encoded
output must stay bit-identical whatever decides the grants, while the
recorded ``e4_arbitration/...`` rows track what each policy costs in
simulated cycles and host speed on each topology.
"""

from __future__ import annotations

from repro.api import (
    ExperimentRunner,
    PerfRecorder,
    PlatformBuilder,
    kernel_rates_table,
    scenario_grid,
)
from repro.soc import ArbitrationKind, InterconnectKind, speed_degradation

from common import emit, format_rows

PE_COUNTS = [1, 2, 4, 8]
MEMORY_COUNTS = [1, 2, 4]
FRAMES = 1
PE_TICK_WORK = 12
MEM_TICK_WORK = 4

#: Topology-axis sweep: PE counts per mode and the shared memory count.
TOPOLOGY_PE_COUNTS = [4, 8, 16]
TOPOLOGY_PE_COUNTS_QUICK = [4, 8]
TOPOLOGY_MEMORIES = 4
TOPOLOGIES = [InterconnectKind.SHARED_BUS, InterconnectKind.CROSSBAR,
              InterconnectKind.MESH]

#: Arbitration-axis sweep: every fabric policy on every topology.
ARBITRATION_PES = 4
ARBITRATION_MEMORIES = 2
ARBITRATION_POLICIES = [ArbitrationKind.ROUND_ROBIN,
                        ArbitrationKind.FIXED_PRIORITY,
                        ArbitrationKind.WEIGHTED_ROUND_ROBIN,
                        ArbitrationKind.TDMA]


def make_scenarios(pe_counts, memory_counts):
    base = (PlatformBuilder()
            .pes(1)
            .wrapper_memories(1)
            .cycle_driven(memory_work=MEM_TICK_WORK, pe_work=PE_TICK_WORK)
            .build())
    return scenario_grid(
        "scaling", base, "gsm_encode",
        config_grid={"num_pes": pe_counts, "num_memories": memory_counts},
        params={"frames": FRAMES, "seed": 7},
    )


def test_e4_scaling_sweep(benchmark, request):
    pe_counts = [1, 2] if request.config.getoption("--quick") else PE_COUNTS
    memory_counts = MEMORY_COUNTS
    scenarios = make_scenarios(pe_counts, memory_counts)
    collected = {}

    def run_sweep():
        # Serial: every point's wall-clock must be measured on an idle host.
        # Per-point workload construction happens inside this timed region;
        # the asserted metrics use report.wallclock_seconds (simulation only).
        runner = ExperimentRunner(scenarios,
                                  recorder=PerfRecorder("e4_scaling"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = collected["results"]
    reports = {}
    for result in results:
        result.raise_for_status()
        key = (result.overrides["num_pes"], result.overrides["num_memories"])
        reports[key] = result.report

    rows = [result.row() for result in results]
    # Per-PE-count degradation of M=4 relative to M=1 (the paper's metric).
    degradation_rows = []
    for num_pes in pe_counts:
        base = reports[(num_pes, 1)]
        wide = reports[(num_pes, 4)]
        degradation_rows.append({
            "PEs": num_pes,
            "speed M=1 (c/s)": round(base.simulation_speed),
            "speed M=4 (c/s)": round(wide.simulation_speed),
            "degradation": f"{speed_degradation(base, wide) * 100:.1f}%",
        })
    emit(
        "e4_scaling",
        format_rows(rows, columns=["scenario", "num_pes", "num_memories",
                                   "simulated_cycles", "wallclock_seconds",
                                   "simulation_speed"])
        + "\n\nM=1 → M=4 degradation per PE count "
        "(paper reports ≈20% at P=4):\n"
        + format_rows(degradation_rows)
        + "\n\nkernel throughput (also recorded in BENCH_kernel.json):\n"
        + kernel_rates_table(results, bench="e4_scaling"),
    )

    # Shape checks: for every PE count, adding memories costs simulation
    # speed; the relative cost shrinks as the number of (more expensive)
    # ISS models grows.
    for num_pes in pe_counts:
        assert reports[(num_pes, 4)].simulation_speed \
            < reports[(num_pes, 1)].simulation_speed
    # The degradation-shrinks-with-PE-count trend needs the full PE range to
    # rise above host noise, so the smoke run only checks monotonicity above.
    if pe_counts == PE_COUNTS:
        small = speed_degradation(reports[(pe_counts[0], 1)],
                                  reports[(pe_counts[0], 4)])
        large = speed_degradation(reports[(pe_counts[-1], 1)],
                                  reports[(pe_counts[-1], 4)])
        assert large < small


def make_topology_scenarios(pe_counts):
    base = (PlatformBuilder()
            .pes(pe_counts[0])
            .wrapper_memories(TOPOLOGY_MEMORIES)
            .build())
    return scenario_grid(
        "topology", base, "gsm_encode",
        config_grid={"num_pes": pe_counts, "interconnect": TOPOLOGIES},
        # Dedicated placement: PE i's buffers live in memory i % M, so
        # concurrent-capable topologies can actually overlap accesses
        # (striped placement with one frame aims every PE at memory 0).
        params={"frames": FRAMES, "seed": 7, "placement": "dedicated"},
    )


def test_e4_topology_sweep(benchmark, request):
    """Bus x crossbar x mesh at 4/8/16 PEs over the same workload."""
    quick = request.config.getoption("--quick")
    pe_counts = TOPOLOGY_PE_COUNTS_QUICK if quick else TOPOLOGY_PE_COUNTS
    scenarios = make_topology_scenarios(pe_counts)
    collected = {}

    def run_sweep():
        runner = ExperimentRunner(scenarios,
                                  recorder=PerfRecorder("e4_topology"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    reports = {}
    for result in collected["results"]:
        result.raise_for_status()
        key = (result.overrides["num_pes"],
               result.overrides["interconnect"].value)
        reports[key] = result.report

    rows = []
    for num_pes in pe_counts:
        for topology in TOPOLOGIES:
            report = reports[(num_pes, topology.value)]
            row = {
                "PEs": num_pes,
                "topology": topology.value,
                "simulated_cycles": report.simulated_cycles,
                "utilization":
                    f"{report.interconnect_stats['utilization'] * 100:.1f}%",
                "pkt p95 (cyc)": "-",
            }
            noc = report.interconnect_stats.get("noc")
            if noc:
                row["pkt p95 (cyc)"] = noc["latency_percentiles"]["p95"]
            rows.append(row)
    emit(
        "e4_topology",
        format_rows(rows)
        + f"\n\n{TOPOLOGY_MEMORIES} shared memories; identical gsm_encode "
        "results on every topology (asserted).",
    )

    for num_pes in pe_counts:
        bus = reports[(num_pes, "shared_bus")]
        xbar = reports[(num_pes, "crossbar")]
        mesh = reports[(num_pes, "mesh")]
        # The encoded output is bit-identical across topologies.
        assert xbar.results == bus.results
        assert mesh.results == bus.results
        # The serialized bus can never need fewer cycles than the crossbar.
        assert bus.simulated_cycles >= xbar.simulated_cycles
        # The mesh's distributed contention costs far less than full bus
        # serialization: hop latency and all, it still finishes first.
        assert mesh.simulated_cycles < bus.simulated_cycles
        # Mesh reports are decorated with the NoC block.
        assert mesh.interconnect_stats["noc"]["packets"] > 0

    # The bus's serialization penalty over the concurrent topologies grows
    # with PE count (simulated cycles, so this is deterministic).
    def bus_penalty(num_pes):
        xbar = reports[(num_pes, "crossbar")].simulated_cycles
        bus = reports[(num_pes, "shared_bus")].simulated_cycles
        return (bus - xbar) / xbar

    assert bus_penalty(pe_counts[-1]) > bus_penalty(pe_counts[0])


def make_arbitration_scenarios():
    base = (PlatformBuilder()
            .pes(ARBITRATION_PES)
            .wrapper_memories(ARBITRATION_MEMORIES)
            .build())
    return scenario_grid(
        "arbitration", base, "gsm_encode",
        config_grid={"interconnect": TOPOLOGIES,
                     "arbitration": ARBITRATION_POLICIES},
        params={"frames": FRAMES, "seed": 7, "placement": "dedicated"},
    )


def test_e4_arbitration_sweep(benchmark):
    """Every fabric arbitration policy on every topology (also --quick).

    The policy may redistribute waiting — it must never change results:
    the encoded GSM output is asserted bit-identical across all twelve
    (topology, policy) points.  Rows land in BENCH_kernel.json under
    ``e4_arbitration/...`` and feed the perf-smoke regression gate.
    """
    scenarios = make_arbitration_scenarios()
    collected = {}

    def run_sweep():
        runner = ExperimentRunner(scenarios,
                                  recorder=PerfRecorder("e4_arbitration"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    reports = {}
    for result in collected["results"]:
        result.raise_for_status()
        key = (result.overrides["interconnect"].value,
               result.overrides["arbitration"].value)
        reports[key] = result.report

    rows = []
    for topology in TOPOLOGIES:
        for policy in ARBITRATION_POLICIES:
            report = reports[(topology.value, policy.value)]
            grants = report.interconnect_stats["arbitration"]["grant_counts"]
            waits = [row["wait_cycles"] for _master, row in
                     sorted(report.interconnect_stats["per_master"].items())]
            rows.append({
                "topology": topology.value,
                "policy": policy.value,
                "simulated_cycles": report.simulated_cycles,
                "interconnect p95 (cyc)":
                    report.interconnect_stats["latency_percentiles"]["p95"],
                "wait cyc/PE": "/".join(str(w) for w in waits),
                "grants": sum(grants.values()),
            })
    emit(
        "e4_arbitration",
        format_rows(rows)
        + f"\n\n{ARBITRATION_PES} PEs, {ARBITRATION_MEMORIES} shared "
        "memories, gsm_encode; identical encoder output across all "
        "policies on every topology (asserted).\n\nkernel throughput "
        "(also recorded in BENCH_kernel.json):\n"
        + kernel_rates_table(collected["results"], bench="e4_arbitration"),
    )

    for topology in TOPOLOGIES:
        baseline = reports[(topology.value, "round_robin")]
        for policy in ARBITRATION_POLICIES:
            report = reports[(topology.value, policy.value)]
            # The arbitration policy must never change computed results.
            assert report.results == baseline.results
            # Every master was granted: even fixed priority drains all PEs.
            grants = report.interconnect_stats["arbitration"]["grant_counts"]
            assert set(grants) == set(range(ARBITRATION_PES))
            assert report.interconnect_stats["arbitration"]["kind"] \
                == policy.value
