"""E11 — partitioned (PDES) simulation: correctness and scaling.

An 8x8 mesh with 16 PEs and 4 memories, placed one-per-quadrant so every
PE only talks to its own quadrant's memory (cut-free under quadrant
tiling): the partitioned runs must be *bit-identical* to the sequential
one — same results, same simulated cycles, zero boundary messages — while
sharding the event loop across 1/2/4 worker processes.

The identity checks are unconditional.  The speedup assertion is gated on
the host actually having >= 4 usable cores: partitioned workers on a
single-core host time-slice one CPU and measure IPC overhead, not
parallelism — the rows still land in ``BENCH_kernel.json`` (with a
``cores`` column) so multi-core hosts track the scaling trajectory.
"""

from __future__ import annotations

import os

from repro.api import (
    ExperimentRunner,
    PerfRecorder,
    PlatformBuilder,
    Scenario,
)

from common import emit, format_rows

#: Epoch (lookahead) window: large, so barrier IPC amortizes — the
#: placement is cut-free, so the window never changes the simulation.
EPOCH_CYCLES = 256
NUM_SAMPLES = 512
PARTITIONS = [1, 2, 4]
QUICK_NUM_SAMPLES = 32
QUICK_PARTITIONS = [1, 2]
#: The speedup bar from the experiment plan, asserted only when the host
#: can actually run 4 workers in parallel.
MIN_SPEEDUP_AT_4 = 2.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _mesh_8x8():
    """16 PEs / 4 memories, one PE cluster + one memory per quadrant."""
    pe_nodes = []
    for pe in range(16):
        quadrant, slot = pe % 4, pe // 4
        row = (quadrant // 2) * 4 + 1 + slot // 2
        col = (quadrant % 2) * 4 + 1 + slot % 2
        pe_nodes.append(row * 8 + col)
    # fir stripes PE i onto memory i % 4; memory q sits in quadrant q.
    memory_nodes = (27, 31, 59, 63)
    return dict(rows=8, cols=8, pe_nodes=tuple(pe_nodes),
                memory_nodes=memory_nodes)


def _mesh_4x4():
    return dict(rows=4, cols=4, pe_nodes=(0, 2, 8, 10),
                memory_nodes=(5, 7, 13, 15))


def _scenario(partitions, mesh, num_pes, num_samples):
    builder = (PlatformBuilder().pes(num_pes).wrapper_memories(4)
               .mesh(mesh["rows"], mesh["cols"],
                     pe_nodes=mesh["pe_nodes"],
                     memory_nodes=mesh["memory_nodes"]))
    if partitions > 1:
        builder = builder.partitions(partitions, epoch_cycles=EPOCH_CYCLES)
    return Scenario(
        name=f"pdes-{mesh['rows']}x{mesh['cols']}-p{partitions}",
        config=builder.build(),
        workload="fir",
        params={"num_samples": num_samples, "seed": 5},
        seed=5,
    )


def test_e11_pdes(benchmark, request):
    quick = request.config.getoption("--quick")
    partitions = QUICK_PARTITIONS if quick else PARTITIONS
    mesh = _mesh_4x4() if quick else _mesh_8x8()
    num_pes = 4 if quick else 16
    num_samples = QUICK_NUM_SAMPLES if quick else NUM_SAMPLES
    scenarios = [_scenario(count, mesh, num_pes, num_samples)
                 for count in partitions]
    cores = _usable_cores()
    collected = {}

    def run_sweep():
        runner = ExperimentRunner(
            scenarios, recorder=PerfRecorder("e11_pdes"))
        collected["results"] = runner.run()
        return collected["results"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    results = {result.scenario: result for result in collected["results"]}
    for result in results.values():
        result.raise_for_status()

    sequential = results[scenarios[0].name].report
    rows = []
    speedups = {}
    for count, scenario in zip(partitions, scenarios):
        report = results[scenario.name].report
        # Bit-identity: the partitioned run is the same simulation.
        assert report.simulated_cycles == sequential.simulated_cycles
        assert report.results == sequential.results
        if count > 1:
            assert report.pdes["boundary_messages"] == 0
        speedup = (sequential.wallclock_seconds / report.wallclock_seconds
                   if report.wallclock_seconds > 0 else float("nan"))
        speedups[count] = speedup
        rows.append({
            "partitions": count,
            "cores": cores,
            "cycles": report.simulated_cycles,
            "rounds": report.pdes["rounds"] if report.pdes else 0,
            "wallclock s": f"{report.wallclock_seconds:.3f}",
            "speedup": f"{speedup:.2f}x",
        })

    if 4 in speedups and cores >= 4:
        assert speedups[4] >= MIN_SPEEDUP_AT_4, (
            f"4-partition speedup {speedups[4]:.2f}x below the "
            f"{MIN_SPEEDUP_AT_4}x bar on a {cores}-core host"
        )

    note = ("speedup bar enforced" if cores >= 4 else
            f"speedup bar skipped: only {cores} usable core(s); "
            "partitioned rows measure IPC overhead, not parallelism")
    emit(
        "e11_pdes",
        format_rows(rows)
        + "\n\nsimulated cycles and results bit-identical across partition "
        f"counts; zero boundary messages (cut-free placement). {note}.",
    )
