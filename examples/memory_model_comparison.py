#!/usr/bin/env python3
"""Compare the three ways of modelling dynamic memory in a co-simulation.

Runs the same allocation-heavy image-pipeline-style workload against:

* the paper's host-backed dynamic shared memory wrapper,
* the traditional fully-modelled dynamic memory (allocator simulated inside
  the memory table),

declared as one scenario per memory model, and prints simulated cycles,
host wall-clock and the wrapper's pointer-table / host-memory statistics —
the practical "why you want the wrapper" view.

Run with:  python examples/memory_model_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import PlatformBuilder, Scenario, run_scenario
from repro.memory import DataType
from repro.soc import MemoryKind

TILE_WORDS = 64
TILES = 24


def image_pipeline_task(ctx):
    """A tiled producer/filter/consumer pipeline on one PE.

    Every tile is a fresh dynamic allocation: the input tile is written,
    filtered into a newly allocated output tile (3-tap running sum), the
    input is freed, and every fourth output tile survives as a "reference
    frame" until the end (so the heap keeps a mix of live and dead blocks,
    which is what makes fully-modelled allocators slow).
    """
    smem = ctx.smem(0)
    reference_frames = []
    checksum = 0
    for tile_index in range(TILES):
        tile = [((tile_index * 131 + i * 17) & 0xFF) for i in range(TILE_WORDS)]
        input_vptr = yield from smem.alloc(TILE_WORDS, DataType.UINT32)
        output_vptr = yield from smem.alloc(TILE_WORDS, DataType.UINT32)
        yield from smem.write_array(input_vptr, tile)
        fetched = yield from smem.read_array(input_vptr, TILE_WORDS)
        filtered = [
            (fetched[i] + fetched[max(0, i - 1)] + fetched[max(0, i - 2)]) & 0xFFFFFFFF
            for i in range(TILE_WORDS)
        ]
        yield from ctx.compute_ops(alu=3 * TILE_WORDS, local=2 * TILE_WORDS)
        yield from smem.write_array(output_vptr, filtered)
        yield from smem.free(input_vptr)
        checksum = (checksum + sum(filtered)) & 0xFFFFFFFF
        if tile_index % 4 == 0:
            reference_frames.append(output_vptr)
        else:
            yield from smem.free(output_vptr)
    for vptr in reference_frames:
        yield from smem.free(vptr)
    return checksum


def run(memory_kind):
    scenario = Scenario(
        name=f"image-pipeline-{memory_kind.value}",
        config=(PlatformBuilder()
                .pes(1)
                .memories(1, memory_kind)
                .capacity(1 << 20)
                .build()),
        workload=lambda config, **params: [image_pipeline_task],
    )
    result = run_scenario(scenario, keep_platform=True).raise_for_status()
    return result.platform, result.report


def main():
    wrapper_platform, wrapper_report = run(MemoryKind.WRAPPER)
    modeled_platform, modeled_report = run(MemoryKind.MODELED)

    assert wrapper_report.results["pe0"] == modeled_report.results["pe0"], \
        "both memory models must compute the same checksum"

    print("workload: tiled image pipeline, "
          f"{TILES} tiles x {TILE_WORDS} words, mixed allocation lifetimes\n")
    header = f"{'memory model':34} {'sim cycles':>12} {'wall s':>9} {'speed c/s':>12}"
    print(header)
    print("-" * len(header))
    for label, report in (("host-backed wrapper (paper)", wrapper_report),
                          ("fully-modelled dynamic memory", modeled_report)):
        print(f"{label:34} {report.simulated_cycles:>12} "
              f"{report.wallclock_seconds:>9.4f} "
              f"{report.simulation_speed:>12,.0f}")

    wrapper = wrapper_platform.memories[0]
    print("\nwrapper internals after the run:")
    summary = wrapper.report()
    print(f"  pointer table: {summary['total_allocations']} allocations, "
          f"{summary['total_frees']} frees, peak {summary['peak_used_bytes']} bytes")
    print(f"  host layer:    {summary['host_stats']['alloc_calls']} callocs, "
          f"peak {summary['host_stats']['peak_live_bytes']} live bytes, "
          f"leak-free = {wrapper.host.check_all_freed()}")
    print(f"  FSM occupancy: {summary['fsm_occupancy']}")

    modeled = modeled_platform.memories[0]
    print("\nfully-modelled baseline internals:")
    print(f"  allocator header-word accesses (simulated + host work): "
          f"{modeled.heap_accesses()}")
    print(f"\nsimulated-cycle ratio (modeled / wrapper): "
          f"{modeled_report.simulated_cycles / wrapper_report.simulated_cycles:.2f}x")


if __name__ == "__main__":
    main()
