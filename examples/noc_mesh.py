#!/usr/bin/env python3
"""Mesh NoC demo: a 4x4 wormhole mesh with a per-link heat summary.

`repro.noc` adds a third interconnect topology next to the shared bus and
the crossbar: a packet-switched 2D mesh with XY dimension-order wormhole
routing and physically separate request/response networks.  This example
builds a 4x4 mesh carrying eight GSM encoder channels against four dynamic
shared memories placed in the far corner, runs the workload, and renders:

* the platform summary (same `SimulationReport` as every other topology),
* end-to-end packet latency percentiles (inject -> completion),
* a per-link "heat" table of the busiest links — the XY route structure
  is directly visible in which links carry the traffic.

Run with:  python examples/noc_mesh.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, PlatformBuilder, Scenario

ROWS = COLS = 4
PES = 8
MEMORIES = 4


def main():
    config = (PlatformBuilder()
              .pes(PES)
              .wrapper_memories(MEMORIES)
              .mesh(rows=ROWS, cols=COLS,       # 16 routers, 2 networks
                    flit_bytes=4,               # 32-bit links
                    link_cycles=1, router_cycles=1)
              .build())
    # Dedicated placement: PE i keeps its buffers in memory i % 4, so the
    # traffic spreads over all four memory-corner nodes (striped placement
    # with a single frame would aim everything at smem0).
    scenario = Scenario(name="noc-mesh-demo", config=config,
                        workload="gsm_encode",
                        params={"frames": 1, "seed": 42,
                                "placement": "dedicated"}, seed=42)
    [result] = ExperimentRunner(scenarios=[scenario]).run()
    result.raise_for_status()
    report = result.report

    print(report.summary())
    noc = report.interconnect_stats["noc"]
    print(f"\nmesh:            {noc['rows']}x{noc['cols']}, "
          f"{noc['flit_bytes']} B flits, "
          f"{noc['link_cycles']}c links / {noc['router_cycles']}c routers")
    print(f"packets / flits: {noc['packets']} / {noc['flits']} "
          f"(avg {noc['average_hops']} hops)")
    latency = noc["latency_percentiles"]
    print(f"packet latency:  p50={latency['p50']} p95={latency['p95']} "
          f"max={latency['max']} cycles end-to-end")

    # Per-link heat: the XY routes from the PE corner (nodes 0..7) to the
    # memory corner (nodes 15, 14, 13, 12) light up specific links.
    links = sorted(noc["links"].items(),
                   key=lambda item: -item[1]["busy_cycles"])
    print(f"\n{'link':<16} {'packets':>8} {'flits':>8} {'busy cyc':>9} "
          f"{'util':>7}")
    utilization = noc.get("link_utilization", {})
    for name, stats in links[:12]:
        if not stats["packets"]:
            break
        print(f"{name:<16} {stats['packets']:>8} {stats['flits']:>8} "
              f"{stats['busy_cycles']:>9} "
              f"{utilization.get(name, 0.0) * 100:>6.2f}%")
    contention = noc["router_contention"]
    if contention:
        hottest = max(contention, key=lambda node: contention[node])
        print(f"\nbusiest router:  n{hottest} "
              f"({contention[hottest]} packets waited behind a grant)")


if __name__ == "__main__":
    main()
