#!/usr/bin/env python3
"""Race detection: catch an unsynchronized producer/consumer with repro.check.

Two tasks share a vector.  The *racy* consumer waits a fixed number of
cycles instead of synchronizing — on today's timing parameters it happens
to read the right values, so the functional check passes and the bug
hides.  The happens-before race detector still reports it, with both
access sites.  The *fixed* consumer acquires the allocation's reservation
semaphore before reading; the same sanitizers then stay silent.

Run with:  python examples/race_detection.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import PlatformBuilder, run_tasks
from repro.memory import DataType

WORDS = 16


def make_producer(shared, locked):
    def producer(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(WORDS, DataType.UINT32)
        shared["vptr"] = vptr
        if locked:
            yield from smem.reserve(vptr)
        yield from smem.write_array(vptr, [i * 3 for i in range(WORDS)])
        if locked:
            yield from smem.release(vptr)
        return vptr

    return producer


def make_racy_consumer(shared):
    def consumer(ctx):
        smem = ctx.smem(0)
        while "vptr" not in shared:
            yield 8 * ctx.clock_period
        # BUG: "surely 400 cycles is enough for the producer to finish".
        # No happens-before edge orders this read after the writes.
        yield 400 * ctx.clock_period
        return (yield from smem.read_array(shared["vptr"], WORDS))

    return consumer


def make_fixed_consumer(shared):
    def consumer(ctx):
        smem = ctx.smem(0)
        while "vptr" not in shared:
            yield 8 * ctx.clock_period
        # The reservation semaphore orders the read after the writes:
        # acquire it (poll until the producer releases), then read.
        vptr = shared["vptr"]
        while not (yield from smem.try_reserve(vptr)):
            yield ctx.poll_interval_cycles * ctx.clock_period
        data = yield from smem.read_array(vptr, WORDS)
        yield from smem.release(vptr)
        return data

    return consumer


def run(locked):
    shared = {}
    config = (PlatformBuilder().pes(2).wrapper_memories(1)
              .sanitize()       # attach repro.check's runtime sanitizers
              .build())
    producer = make_producer(shared, locked=locked)
    consumer = make_fixed_consumer(shared) if locked \
        else make_racy_consumer(shared)
    return run_tasks(config, [producer, consumer])


def main():
    racy = run(locked=False)
    expected = [i * 3 for i in range(WORDS)]
    print("== racy version ==")
    print(f"functional result correct: {racy.results['pe1'] == expected} "
          f"(the bug hides from a value check!)")
    for report in racy.sanitizer_reports:
        print(f"\n[{report['checker']}] {report['message']}")
        for site in report["sites"]:
            # The traceback runs outermost->innermost; the deepest frame
            # outside src/repro is the workload code to fix.
            where = next((frame for frame in reversed(site["traceback"])
                          if f"{os.sep}repro{os.sep}" not in frame[0]), None)
            at = f" at {where[2]} ({os.path.basename(where[0])}:{where[1]})" \
                if where else ""
            print(f"  - {site['master']} {site['op']} "
                  f"mem{site['mem_index']}+{site['vptr']:#x} "
                  f"@ t={site['time']}{at}")

    fixed = run(locked=True)
    print("\n== fixed version (reserve/release) ==")
    print(f"functional result correct: {fixed.results['pe1'] == expected}")
    print(f"sanitizer reports: {len(fixed.sanitizer_reports)}")


if __name__ == "__main__":
    main()
