#!/usr/bin/env python3
"""Cache locality demo: the same workload, three memory hierarchies.

The `repro.cache` subsystem gives every processing element an L1 data
cache (MSI-coherent across PEs) in one builder call.  This example runs the
`stencil` registry workload — scalar loads/stores with a locality knob —
on three platforms:

1. the flat platform (no caches, every access crosses the interconnect),
2. write-through L1 caches (reads cached, writes forwarded),
3. write-back L1 caches (whole array transfers absorbed too),

and prints the shared-memory transaction counts seen by the per-memory
`BusMonitor` probes plus each cache's hit rate.  The computed results are
bit-identical in all three runs — caches only change *where* data lives.

Run with:  python examples/cache_locality.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, PlatformBuilder, Scenario

SIZE = 64
STRIDE = 1  # try 17 for a line-hostile traversal of the same data


def make_scenario(label, policy=None):
    builder = (PlatformBuilder()
               .pes(2)
               .wrapper_memories(1)
               .monitored())          # per-memory BusMonitor probes
    if policy is not None:
        builder = builder.l1_cache(sets=16, ways=2, line_bytes=16,
                                   policy=policy)
    return Scenario(
        name=label,
        config=builder.build(),
        workload="stencil",
        params={"size": SIZE, "iterations": 1, "stride": STRIDE, "seed": 7},
        seed=7,
    )


def main():
    scenarios = [
        make_scenario("flat"),
        make_scenario("write-through", "write_through"),
        make_scenario("write-back", "write_back"),
    ]
    results = ExperimentRunner(scenarios).run()
    for result in results:
        result.raise_for_status()

    reference = results[0].report.results
    print(f"{'platform':<14} {'mem txns':>9} {'hit rate':>9} "
          f"{'sim cycles':>11}")
    for result in results:
        report = result.report
        assert report.results == reference, "caches changed the answer!"
        print(f"{result.scenario:<14} "
              f"{report.interconnect_stats['memory_transactions']:>9} "
              f"{report.cache_hit_rate() * 100:>8.1f}% "
              f"{report.simulated_cycles:>11}")
    print("\nresults are bit-identical across all three platforms")
    for cache_report in results[2].report.cache_reports:
        print(f"{cache_report['name']}: {cache_report['geometry']} "
              f"{cache_report['policy']}, hits={cache_report['hits']}, "
              f"misses={cache_report['misses']}, "
              f"writebacks={cache_report['writebacks']}, "
              f"absorbed array writes={cache_report['array_absorbs']}")


if __name__ == "__main__":
    main()
