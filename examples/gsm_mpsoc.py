#!/usr/bin/env python3
"""The paper's experiment in miniature: GSM encoding on a 4-PE MPSoC.

Builds the two platforms of Section 4 — four processing elements with one
dynamic shared memory, and the same four processing elements with four
shared memories — runs the GSM 06.10 encoder workload on both (every frame
buffer allocated and freed through the wrapper), verifies the encoded
bitstreams against the pure-Python reference encoder, and reports the
simulation-speed degradation the paper quotes as ≈20%.

Run with:  python examples/gsm_mpsoc.py  [frames-per-channel]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.soc import Platform, PlatformConfig, speed_degradation
from repro.sw.gsm import (
    PLACEMENT_STRIPED,
    build_gsm_tasks,
    check_platform_results,
    make_gsm_channels,
    pack_frame,
    reference_encode,
    GsmFrameParameters,
)


def run_configuration(channels, reference, num_memories):
    config = PlatformConfig(
        num_pes=len(channels),
        num_memories=num_memories,
        idle_tick_memories=True,   # cycle-driven co-simulation, as in the paper
        idle_tick_work=4,
        pe_tick_work=12,
    )
    platform = Platform(config)
    placement = PLACEMENT_STRIPED if num_memories > 1 else None
    tasks = (build_gsm_tasks(channels, placement=placement) if placement
             else build_gsm_tasks(channels))
    platform.add_tasks(tasks)
    report = platform.run()
    assert report.all_pes_finished
    assert check_platform_results(report.results, reference), \
        "platform-encoded parameters must match the reference encoder"
    return report


def main():
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    channels = make_gsm_channels(4, frames, seed=42)
    reference = reference_encode(channels)

    print(f"encoding {frames} frame(s) per channel on 4 processing elements...")
    one_memory = run_configuration(channels, reference, num_memories=1)
    four_memories = run_configuration(channels, reference, num_memories=4)

    print("\n--- 4 ISSs + interconnect + 1 shared memory ---")
    print(one_memory.summary())
    print("\n--- 4 ISSs + interconnect + 4 shared memories ---")
    print(four_memories.summary())

    degradation = speed_degradation(one_memory, four_memories)
    print(f"\nsimulation-speed degradation going 1 -> 4 memories: "
          f"{degradation * 100:.1f}%   (paper: 20%)")

    # Show one packed frame to prove the output is a real GSM bitstream.
    first_frame = GsmFrameParameters.from_words(one_memory.results["pe0"][0])
    packed = pack_frame(first_frame)
    print(f"\nfirst encoded frame of channel 0 ({len(packed)} bytes): "
          f"{packed[:12].hex()}...")


if __name__ == "__main__":
    main()
