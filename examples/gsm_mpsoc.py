#!/usr/bin/env python3
"""The paper's experiment in miniature: GSM encoding on a 4-PE MPSoC.

Declares the two platforms of Section 4 — four processing elements with one
dynamic shared memory, and the same four processing elements with four
shared memories — as scenarios over the ``gsm_encode`` registry workload
(every frame buffer allocated and freed through the wrapper), runs them
through the experiment runner (the workload's built-in check verifies the
encoded bitstreams against the pure-Python reference encoder), and reports
the simulation-speed degradation the paper quotes as ≈20%.

Run with:  python examples/gsm_mpsoc.py  [frames-per-channel]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, PlatformBuilder, Scenario, results_table
from repro.soc import speed_degradation
from repro.sw.gsm import GsmFrameParameters, pack_frame


def make_scenario(num_memories, frames):
    config = (PlatformBuilder()
              .pes(4)
              .wrapper_memories(num_memories)
              .cycle_driven(memory_work=4, pe_work=12)  # as in the paper
              .build())
    return Scenario(
        name=f"gsm-M{num_memories}",
        config=config,
        workload="gsm_encode",
        params={"frames": frames, "seed": 42},
    )


def main():
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    print(f"encoding {frames} frame(s) per channel on 4 processing elements...")
    scenarios = [make_scenario(1, frames), make_scenario(4, frames)]
    results = ExperimentRunner(scenarios).run()
    for result in results:
        result.raise_for_status()
    one_memory, four_memories = results[0].report, results[1].report

    print("\n--- 4 ISSs + interconnect + 1 shared memory ---")
    print(one_memory.summary())
    print("\n--- 4 ISSs + interconnect + 4 shared memories ---")
    print(four_memories.summary())
    print()
    print(results_table(results))

    degradation = speed_degradation(one_memory, four_memories)
    print(f"\nsimulation-speed degradation going 1 -> 4 memories: "
          f"{degradation * 100:.1f}%   (paper: 20%)")

    # Show one packed frame to prove the output is a real GSM bitstream.
    first_frame = GsmFrameParameters.from_words(one_memory.results["pe0"][0])
    packed = pack_frame(first_frame)
    print(f"\nfirst encoded frame of channel 0 ({len(packed)} bytes): "
          f"{packed[:12].hex()}...")


if __name__ == "__main__":
    main()
