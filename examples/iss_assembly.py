#!/usr/bin/env python3
"""Run an assembly program on the ARM-like ISS against the wrapper.

The other examples use the transaction-accurate task processors; this one
shows the instruction-accurate path the paper's framework uses: an ISS
executes an assembled program whose software interrupts are the high-level
dynamic-memory API, so the program allocates a vector in the shared memory
wrapper, fills it with squares, sums it back and frees it.  The bus + one
wrapper fabric comes from the `repro.api` testbench helper.

Run with:  python examples/iss_assembly.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import single_memory_testbench
from repro.isa import assemble
from repro.iss import IssProcessor
from repro.kernel import Simulator

PROGRAM = """
; r6 = number of elements, r4 = vptr, r5 = running sum, r7 = loop index
        MOV   r6, #10
        MOV   r0, r6          ; dim
        MOV   r1, #4          ; DataType.UINT32
        MOV   r3, #0          ; shared memory 0
        SWI   #1              ; r0 = sm_alloc(dim, type)
        MOV   r4, r0
        MOV   r7, #0
fill:   MUL   r2, r7, r7      ; value = i*i
        MOV   r0, r4
        MOV   r1, r7
        SWI   #3              ; sm_write(vptr, i, i*i)
        ADD   r7, r7, #1
        CMP   r7, r6
        BNE   fill

        MOV   r5, #0
        MOV   r7, #0
sum:    MOV   r0, r4
        MOV   r1, r7
        SWI   #4              ; r0 = sm_read(vptr, i)
        ADD   r5, r5, r0
        ADD   r7, r7, #1
        CMP   r7, r6
        BNE   sum

        MOV   r0, r4
        SWI   #2              ; sm_free(vptr)
        MOV   r0, r5
        SWI   #0              ; exit(sum)
"""


def main():
    testbench = single_memory_testbench(master_name="iss0")
    wrapper = testbench.memory

    program = assemble(PROGRAM)
    print(f"assembled {len(program)} instructions")

    processor = IssProcessor("iss0", testbench.port, [testbench.api],
                             program.words, clock_period=10,
                             parent=testbench.top)
    simulator = Simulator(testbench.top)
    simulator.run()

    expected = sum(i * i for i in range(10))
    report = processor.report()
    print(f"program exit code: {processor.exit_code}  (expected {expected})")
    print(f"instructions executed: {report['instructions']}, "
          f"CPU cycles: {report['cpu_cycles']}, "
          f"SWI calls: {report['swi_calls']}")
    print(f"simulated time: {simulator.now} "
          f"({simulator.now // 10} bus cycles)")
    print(f"wrapper after run: {wrapper.live_count()} live allocations, "
          f"{wrapper.table.total_allocations} total, host leak-free = "
          f"{wrapper.host.check_all_freed()}")
    assert processor.exit_code == expected


if __name__ == "__main__":
    main()
