#!/usr/bin/env python3
"""Partitioned (PDES) simulation demo: one mesh, 1/2/4 event loops.

Setting ``partitions=N`` on a mesh platform shards it into N rectangular
tiles, runs each tile's event loop in its own worker process, and
synchronizes them conservatively at link-latency epochs (boundary
crossings pay a modelled cut latency; everything else is bit-identical
to the sequential simulation).

This example runs the same FIR workload on a 4x4 mesh sequentially and
partitioned 2 and 4 ways.  The placement is deliberately *cut-free* —
one PE and one memory per quadrant, each PE striped onto its own
quadrant's memory — so all three runs produce identical results,
identical simulated time and identical fabric statistics, and the
partitioned reports show zero boundary messages.  A second, deliberately
bad placement (every PE hammering one far-corner memory) shows boundary
traffic and the cut latency it pays.

Run with:  python examples/pdes_mesh.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, PlatformBuilder, Scenario

QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
NUM_SAMPLES = 32 if QUICK else 128


def scenario(name, partitions, *, num_memories=4, pe_nodes, memory_nodes):
    builder = (PlatformBuilder()
               .pes(4)
               .wrapper_memories(num_memories)
               .mesh(4, 4, pe_nodes=pe_nodes, memory_nodes=memory_nodes))
    if partitions > 1:
        builder = builder.partitions(partitions)
    return Scenario(name=name, config=builder.build(), workload="fir",
                    params={"num_samples": NUM_SAMPLES, "seed": 9}, seed=9)


def main():
    # Cut-free placement: one PE + one memory per quadrant (fir stripes
    # PE i onto memory i % 4, and XY routes never leave a quadrant).
    local = dict(pe_nodes=(0, 2, 8, 10), memory_nodes=(5, 7, 13, 15))
    runs = [scenario(f"quadrants-p{count}", count, **local)
            for count in (1, 2, 4)]
    # Worst-case placement: all four PEs share the far-corner memory, so
    # three of them talk across partition cuts.
    runs.append(scenario("far-corner-p2", 2, num_memories=1,
                         pe_nodes=(0, 2, 8, 10), memory_nodes=(15,)))
    results = {result.scenario: result
               for result in ExperimentRunner(scenarios=runs).run()}
    for result in results.values():
        result.raise_for_status()

    baseline = results["quadrants-p1"].report
    print(baseline.summary())
    print(f"\n{'scenario':<16} {'parts':>5} {'cycles':>8} {'rounds':>7} "
          f"{'boundary':>9} {'identical':>10}")
    for name, result in results.items():
        report = result.report
        pdes = report.pdes or {}
        identical = (report.results == baseline.results
                     and report.simulated_time == baseline.simulated_time)
        print(f"{name:<16} {pdes.get('partitions', 1):>5} "
              f"{report.simulated_cycles:>8} {pdes.get('rounds', 0):>7} "
              f"{pdes.get('boundary_messages', 0):>9} "
              f"{'yes' if identical else 'results-only':>10}")

    crossing = results["far-corner-p2"].report
    assert crossing.results == baseline.results  # values, not timing
    assert crossing.pdes["boundary_messages"] > 0
    print("\nquadrant runs are bit-identical to sequential (0 boundary "
          "messages);\nthe far-corner run computes the same results but "
          f"pays the cut latency across "
          f"{crossing.pdes['boundary_messages']} boundary crossings "
          f"({crossing.simulated_cycles} vs {baseline.simulated_cycles} "
          "cycles).")


if __name__ == "__main__":
    main()
