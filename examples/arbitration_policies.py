#!/usr/bin/env python3
"""Arbitration-policy demo: priority inversion on a producer/consumer pair.

`repro.fabric` makes the arbitration policy a pluggable axis of every
interconnect topology: `PlatformBuilder.arbitration(...)` selects
round-robin, fixed-priority, weighted round-robin or TDMA, and the same
policy drives every grant point of the chosen fabric (the bus channel,
each crossbar channel, each mesh slave server).

This example sets up the classic *priority inversion* scenario: two
producer/consumer FIFO pairs share one memory and one bus, and
fixed-priority arbitration ranks one side of the pipeline above the
other.  Whichever side loses, the outcome is the same: the higher-ranked
pair of masters polls the FIFO control words in an interleaved loop that
keeps a high-priority request pending at nearly every grant instant, and
because fixed priority never rotates, the lower-ranked masters *starve* —
the pipeline blows its simulation budget with the FIFO stuck.  Ranking
the consumers first starves the producers; ranking the producers first
starves the consumers' reads just the same.

The rotation-based policies (round-robin, weighted round-robin, TDMA)
all drain the FIFOs with bit-identical item streams — weighted RR even
while granting the producers a 4:1 bandwidth budget — demonstrating the
fabric-layer guarantee: arbitration redistributes waiting, never results.

Run with:  python examples/arbitration_policies.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, PlatformBuilder, Scenario
from repro.soc import format_table

PES = 4          # PE0/PE2 produce, PE1/PE3 consume (pairs share a FIFO).
#: REPRO_EXAMPLE_QUICK=1 shrinks the run for smoke tests (CI).
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
ITEMS = 8 if QUICK else 48
FIFO_DEPTH = 4
#: Simulated-time budget (in cycles) that comfortably covers every fair
#: policy; only a starved pipeline ever hits it.
MAX_CYCLES = 60_000 if QUICK else 400_000

#: The policies under comparison.  "inverted" ranks the consumers (1, 3)
#: above the producers (0, 2) — the priority-inversion setup; "producers
#: first" is the same policy with a sane order; "weighted" gives the
#: producers a 4:1 grant budget while still guaranteeing consumer turns.
POLICIES = {
    "round_robin": {},
    "tdma": {"kind": "tdma"},
    "weighted (producers 4:1)": {"kind": "weighted_round_robin",
                                 "weights": (4, 1, 4, 1)},
    "priority (producers first)": {"kind": "fixed_priority",
                                   "priority_order": (0, 2, 1, 3)},
    "priority (inverted)": {"kind": "fixed_priority",
                            "priority_order": (1, 3, 0, 2)},
}


def build_scenario(label, policy):
    builder = PlatformBuilder().pes(PES).wrapper_memories(1)
    if policy:
        kwargs = dict(policy)
        builder = builder.arbitration(kwargs.pop("kind"), **kwargs)
    config = builder.build()
    return Scenario(
        name=label, config=config, workload="producer_consumer",
        params={"num_items": ITEMS, "fifo_depth": FIFO_DEPTH, "seed": 3},
        seed=3, max_time=MAX_CYCLES * config.clock_period,
        expect_finished=False,
    )


def main():
    scenarios = [build_scenario(label, policy)
                 for label, policy in POLICIES.items()]
    results = ExperimentRunner(scenarios).run()

    rows = []
    reference = None
    for result in results:
        if result.error:
            raise RuntimeError(result.error)
        report = result.report
        finished = report.all_pes_finished
        stats = report.interconnect_stats
        # A fully starved master never completes a transfer and has no
        # per-master row at all — report that as "shut out".
        waits = {master: str(row["wait_cycles"])
                 for master, row in stats["per_master"].items()}
        for master in range(PES):
            waits.setdefault(master, "shut out")
        rows.append({
            "policy": result.scenario,
            "finished": "yes" if finished else "STARVED",
            "simulated cycles": report.simulated_cycles,
            "producer waits (pe0/pe2)": f"{waits[0]}/{waits[2]}",
            "consumer waits (pe1/pe3)": f"{waits[1]}/{waits[3]}",
        })
        if finished:
            if reference is None:
                reference = report.results
            assert report.results == reference, \
                "arbitration changed the FIFO item streams!"

    print(f"{PES} PEs on one shared bus, two producer->consumer FIFO "
          f"pairs, {ITEMS} items each, budget {MAX_CYCLES:,} cycles\n")
    print(format_table(rows))
    print("\nEvery rotating policy drains both FIFOs with bit-identical "
          "item streams\n(asserted): arbitration only moves the waiting "
          "around.  Fixed priority starves\nwhichever side it ranks last — "
          "the winners' interleaved polling keeps a\nhigher-priority "
          "request pending at nearly every grant, and a policy that\n"
          "never rotates never lets the losers through.")


if __name__ == "__main__":
    main()
