#!/usr/bin/env python3
"""Sweep observatory demo: cached sweeps, live telemetry, offline queries.

``ExperimentRunner(store=...)`` content-hashes every scenario (platform
config + workload + params + seed, salted with the code version) and
persists finished results in a SQLite :class:`repro.store.ResultStore`.
A re-run of the same sweep replays results from the store instead of
simulating — byte-identical, and resumable after a crash because each
result is committed the moment its worker finishes.  A
:class:`repro.store.SweepMonitor` tails the run as structured events
(scheduled / started / heartbeat / finished / failed / timeout) into a
JSONL log next to the store.

This example runs one FIR sweep twice — cold, then warm — proves the
warm pass did zero simulation work, then queries the persisted store
offline the same way ``python -m repro.analysis.serve query`` does.
Point the live dashboard at the artifacts it leaves behind:

    python -m repro.analysis.serve serve --store <dir>/sweep.sqlite

Run with:  python examples/sweep_dashboard.py
(Set REPRO_STORE_DIR to keep the store between runs, e.g. in CI.)
"""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, PlatformBuilder, scenario_grid
from repro.analysis.serve import main as serve_cli
from repro.store import ResultStore, SweepMonitor, read_events

#: REPRO_EXAMPLE_QUICK=1 shrinks the run for smoke tests (CI).
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
SAMPLES = [8, 16] if QUICK else [8, 16, 32, 64]
MEMORIES = [1] if QUICK else [1, 2]


def build_grid():
    base = (PlatformBuilder()
            .pes(2)
            .wrapper_memories(1)
            .build())
    return scenario_grid(
        "fir", base, "fir",
        config_grid={"num_memories": MEMORIES},
        param_grid={"num_samples": SAMPLES},
        params={"seed": 3}, seed=42)


def run_pass(label, store, log_path):
    with SweepMonitor(log_path=log_path, live=False) as monitor:
        results = ExperimentRunner(build_grid(), store=store,
                                   monitor=monitor).run()
    hits = sum(1 for r in results if r.cached)
    print(f"{label}: {len(results)} scenarios, {hits} served from cache")
    print("  " + monitor.progress_line())
    return results


def main():
    store_dir = os.environ.get("REPRO_STORE_DIR") or tempfile.mkdtemp(
        prefix="repro-sweep-")
    os.makedirs(store_dir, exist_ok=True)
    store_path = os.path.join(store_dir, "sweep.sqlite")
    log_path = os.path.join(store_dir, "sweep.events.jsonl")

    print(f"sweep store: {store_path}")
    store = ResultStore(store_path)

    cold = run_pass("cold pass", store, log_path)
    warm = run_pass("warm pass", store, log_path)

    # The warm pass must be pure replay: every scenario a cache hit and
    # the serialized results byte-identical with the cold pass.
    assert all(r.cached for r in warm), "warm pass re-simulated a scenario"
    cold_json = json.dumps([r.as_dict() for r in cold], sort_keys=True,
                           default=str)
    warm_json = json.dumps([r.as_dict() for r in warm], sort_keys=True,
                           default=str)
    assert cold_json == warm_json, "cached replay diverged from cold run"
    print("warm pass replayed byte-identical results "
          f"({len(warm)} cache hits, zero simulation work)")

    events = read_events(log_path)
    print(f"event log: {len(events)} events across both passes")
    print(f"store: {store.describe()}")
    store.close()

    # Offline queries — the same code paths the HTTP dashboard serves.
    print("\n$ python -m repro.analysis.serve query results --table")
    serve_cli(["query", "results", "--store", store_path, "--table"])
    print("\n$ python -m repro.analysis.serve query progress")
    serve_cli(["query", "progress", "--store", store_path,
               "--events", log_path])

    print(f"\nlive dashboard:  python -m repro.analysis.serve serve "
          f"--store {store_path}")


if __name__ == "__main__":
    main()
