#!/usr/bin/env python3
"""Quickstart: build a 2-PE MPSoC with one dynamic shared memory and run it.

This example shows the core flow of the declarative API in ~40 lines:

1. describe a platform with the fluent `PlatformBuilder`,
2. write a workload — the embedded programs of the processing elements —
   against the C-formalism shared-memory API (alloc / write / read_array /
   free), with a check on the expected result,
3. wrap both in a `Scenario`, run it, and inspect the report.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import PlatformBuilder, Scenario, Workload, run_scenario
from repro.memory import DataType

EXPECTED = sum(i * i for i in range(16))


def make_producer(shared):
    """PE0: allocate a vector in shared memory, fill it, publish its Vptr."""

    def task(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(16, DataType.UINT32)
        yield from smem.write_array(vptr, [i * i for i in range(16)])
        shared["vptr"] = vptr
        # Hand-shake through a flag word the consumer polls.
        flag = yield from smem.alloc(1, DataType.UINT32)
        shared["flag"] = flag
        yield from ctx.compute(200)          # some local work
        yield from smem.write(flag, 1)       # data is ready
        return vptr

    return task


def make_consumer(shared):
    """PE1: wait for the data, read it back, sum it and free everything."""

    def task(ctx):
        smem = ctx.smem(0)
        while "flag" not in shared:
            yield 32 * ctx.clock_period
        yield from ctx.wait_flag(shared["flag"], expected=1)
        values = yield from smem.read_array(shared["vptr"], 16)
        yield from ctx.compute_ops(alu=len(values))
        yield from smem.free(shared["vptr"])
        yield from smem.free(shared["flag"])
        return sum(values)

    return task


def handshake_workload(config, **params):
    """An inline workload factory: two cooperating tasks plus a check."""
    shared = {}
    return Workload(
        tasks=[make_producer(shared), make_consumer(shared)],
        checks=[lambda report: report.results["pe1"] == EXPECTED
                or f"consumer summed {report.results['pe1']}, wanted {EXPECTED}"],
        description="producer/consumer handshake over one shared vector",
    )


def main():
    scenario = Scenario(
        name="quickstart",
        config=PlatformBuilder().pes(2).wrapper_memories(1).build(),
        workload=handshake_workload,
    )
    result = run_scenario(scenario).raise_for_status()
    report = result.report

    print(report.summary())
    print()
    print(f"consumer result: {report.results['pe1']} (expected {EXPECTED})")
    print(f"shared memory after run: "
          f"{report.memory_reports[0]['live_allocations']} live allocations, "
          f"{report.memory_reports[0]['total_allocations']} total")


if __name__ == "__main__":
    main()
