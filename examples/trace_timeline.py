#!/usr/bin/env python3
"""Observability demo: a text timeline of a GSM run on a 4-PE mesh.

`repro.obs` rides the platform's existing observer hooks to record a
typed event timeline in *simulated* time: per-PE task spans and
``ctx.span`` workload annotations, per-master fabric transaction spans,
cache fills/writebacks, IRQ instants and a periodic metrics counter
track.  The same collector feeds three sinks — Chrome/Perfetto JSON
(``python -m repro.obs.export``), a metrics time-series on the report,
and the pure-python text renderer shown here.

This example traces one GSM encoder run on a 2x3 mesh (four PEs, two
shared memories in the far corner), renders the timeline to stdout and
lists the longest recorded spans.  Tracing never perturbs the run: the
simulated end time and scheduler counters are bit-identical with
observability disabled.

Run with:  python examples/trace_timeline.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import PlatformBuilder, Scenario, render_timeline
from repro.api.runner import run_scenario
from repro.obs import longest_spans

PES = 4
MEMORIES = 2
#: REPRO_EXAMPLE_QUICK=1 shrinks the run for smoke tests (CI).
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
FRAMES = 1 if QUICK else 2


def main():
    config = (PlatformBuilder()
              .pes(PES)
              .wrapper_memories(MEMORIES)
              .mesh(rows=2, cols=3, flit_bytes=4,
                    link_cycles=1, router_cycles=1)
              .trace()                          # timeline events
              .metrics(interval_cycles=2048)    # + periodic counter rows
              .build())
    scenario = Scenario(name="trace-timeline-demo", config=config,
                        workload="gsm_encode",
                        params={"frames": FRAMES, "seed": 7,
                                "placement": "dedicated"}, seed=7)
    result = run_scenario(scenario, keep_platform=True, capture_errors=False)
    result.raise_for_status()
    trace = result.platform.obs.trace

    print(f"simulated {result.report.simulated_cycles} cycles; "
          f"recorded {len(trace)} events "
          f"({trace.dropped} dropped)")
    counts = trace.summary()["by_category"]
    print("by category:     " + ", ".join(
        f"{cat}={count}" for cat, count in sorted(counts.items())))
    print(f"metrics rows:    {len(result.timeseries)}")
    print()

    # The full timeline is dominated by per-word fabric transactions;
    # restrict the render to the task/annotation, IRQ and metrics lanes
    # so the workload phases stay readable at terminal width.
    print(render_timeline(trace, width=72,
                          categories=("task", "irq", "metrics")))
    print()

    print("longest spans:")
    for span in longest_spans(trace, count=6):
        print(f"  {span.dur:>12_} ps  {span.cat:<7} {span.name} "
              f"on {span.track[0]}/{span.track[1]}")


if __name__ == "__main__":
    main()
