#!/usr/bin/env python3
"""Multiple dynamic shared memories and a heterogeneous task mix.

Section 3 of the paper ends with "multiple dynamic shared memories are
considered".  This example builds a 4-PE / 2-memory crossbar platform with
the fluent builder and declares one scenario running three cooperating
applications at once:

* PE0/PE1: a producer/consumer pair streaming items through a FIFO whose
  storage and indices live in shared memory 0 (reservation bits guard the
  index updates);
* PE2: an FIR filter with its buffers in shared memory 1;
* PE3: a GSM encoder channel whose frame buffers are striped across both
  memories.

Run with:  python examples/multi_memory_pipeline.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import PlatformBuilder, Scenario, Workload, run_scenario
from repro.sw.gsm import (
    PLACEMENT_STRIPED,
    make_gsm_channels,
    make_gsm_encoder_task,
    reference_encode,
)
from repro.sw.workloads import (
    fir_reference,
    make_consumer_task,
    make_fir_task,
    make_producer_task,
)


def mixed_pipeline_workload(config, **params):
    """Three applications sharing one platform, each with its own check."""
    # Producer/consumer pair on memory 0.
    items = [i * 7 for i in range(30)]
    fifo_shared = {}
    tasks = [
        make_producer_task(items, fifo_depth=8, shared=fifo_shared,
                           memory_index=0),
        make_consumer_task(fifo_shared, memory_index=0),
    ]

    # FIR on memory 1.
    samples = [(i * 29) % 512 for i in range(96)]
    taps = [1, 4, 6, 4, 1]
    tasks.append(make_fir_task(samples, taps, memory_index=1))

    # One GSM channel striped over both memories.
    channel = make_gsm_channels(1, 1, seed=5)[0]
    tasks.append(make_gsm_encoder_task(channel, pe_index=3,
                                       placement=PLACEMENT_STRIPED))
    expected_gsm = reference_encode([channel])[0]

    def check(report):
        if report.results["pe1"] != items:
            return "FIFO must deliver items in order"
        if report.results["pe2"] != fir_reference(samples, taps):
            return "FIR mismatch"
        if [list(f) for f in report.results["pe3"]] != expected_gsm:
            return "GSM mismatch"
        return True

    return Workload(tasks=tasks, checks=[check],
                    description="FIFO + FIR + GSM on 4 PEs / 2 memories")


def main():
    scenario = Scenario(
        name="multi-memory-pipeline",
        config=(PlatformBuilder()
                .pes(4)
                .wrapper_memories(2)
                .crossbar()
                .build()),
        workload=mixed_pipeline_workload,
    )
    result = run_scenario(scenario).raise_for_status()
    report = result.report

    print(report.summary())
    print()
    print("all three applications produced reference-exact results")

    print("\nper-memory traffic:")
    for memory in report.memory_reports:
        ops = memory.get("op_counts", {})
        print(f"  {memory['name']}: {memory.get('total_allocations', 0)} allocations, "
              f"op mix = {dict(sorted(ops.items()))}")
    print("\nper-PE summary:")
    for pe in report.pe_reports:
        print(f"  {pe['name']}: {pe['elapsed_cycles']} cycles, "
              f"{pe['api_calls']} API calls, "
              f"{pe['compute_cycles']} compute cycles")


if __name__ == "__main__":
    main()
