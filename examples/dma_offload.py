#!/usr/bin/env python3
"""DMA offload demo: copy by core vs. copy by engine, overlap included.

`repro.dev` attaches memory-mapped peripherals to the platform fabric:
an interrupt controller, DMA engines (first-class bus masters) and
timers.  This example runs the `dma_memcpy` workload both ways on the
same platform shape —

* mode="pe":  each core copies its buffer with burst reads/writes
  through its own master port, then does its local compute;
* mode="dma": each core programs a dedicated DMA engine (one burst
  write to the channel registers), runs the same local compute while
  the engine moves the data, and blocks on the completion interrupt.

The destination buffers are asserted bit-identical across modes; the
cycle counts show the offload win growing with the buffer size until
the bus, not the engine, is the bottleneck.

Run with:  python examples/dma_offload.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.api import ExperimentRunner, PlatformBuilder, Scenario
from repro.soc import format_table

PES = 2
QUICK = bool(os.environ.get("REPRO_EXAMPLE_QUICK"))
SIZES = [64, 256] if QUICK else [64, 256, 1024]
COMPUTE_CYCLES = 2048


def make_scenario(mode, words):
    builder = PlatformBuilder().pes(PES).wrapper_memories(2)
    if mode == "dma":
        # One engine per PE; each engine is its own master on the fabric.
        builder = builder.dma(PES)
    config = builder.build()
    return Scenario(
        name=f"{mode}-{words}w", config=config, workload="dma_memcpy",
        params={"words": words, "mode": mode,
                "compute_cycles": COMPUTE_CYCLES, "seed": 7},
    )


def main():
    scenarios = [make_scenario(mode, words)
                 for words in SIZES for mode in ("pe", "dma")]
    results = {r.scenario: r for r in ExperimentRunner(scenarios).run()}

    rows = []
    for words in SIZES:
        pe = results[f"pe-{words}w"]
        dma = results[f"dma-{words}w"]
        for result in (pe, dma):
            result.raise_for_status()
        assert pe.report.results == dma.report.results, \
            "offloading changed the copied data!"
        engines = [d for d in dma.report.device_reports
                   if d["kind"] == "dma"]
        pe_cycles = pe.report.simulated_cycles
        dma_cycles = dma.report.simulated_cycles
        rows.append({
            "words/PE": words,
            "pe cycles": pe_cycles,
            "dma cycles": dma_cycles,
            "speedup": f"{pe_cycles / dma_cycles:.2f}x",
            "dma words moved": sum(e["words_copied"] for e in engines),
        })

    print(f"{PES} PEs, 2 shared memories, {COMPUTE_CYCLES} compute cycles "
          f"overlapped with each copy\n")
    print(format_table(rows))
    print("\nDestination buffers are bit-identical in both modes (asserted).")
    print("The offload win peaks while the compute overlap hides the copy;")
    print("tiny copies barely amortise the programming + interrupt cost,")
    print("and huge ones turn bus-bound, where the engine moves data no")
    print("faster than the core's own bursts would.")


if __name__ == "__main__":
    main()
