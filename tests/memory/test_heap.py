"""Tests for the in-memory first-fit heap (metadata inside the memory)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import CountingAccessor, FreeListHeap, HeapError, HEADER_BYTES


class ArrayBackedMemory:
    """A simple word store for exercising the heap without a simulator."""

    def __init__(self, size_bytes):
        self.data = bytearray(size_bytes)

    def read(self, address):
        return int.from_bytes(self.data[address:address + 4], "little")

    def write(self, address, value):
        self.data[address:address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")


def make_heap(size_bytes=1024, base=0):
    memory = ArrayBackedMemory(base + size_bytes)
    accessor = CountingAccessor(memory.read, memory.write)
    heap = FreeListHeap(accessor, base=base, size_bytes=size_bytes)
    heap.initialize()
    return heap, accessor


class TestBasicAllocation:
    def test_malloc_returns_payload_after_header(self):
        heap, _ = make_heap()
        address = heap.malloc(16)
        assert address == HEADER_BYTES

    def test_two_allocations_do_not_overlap(self):
        heap, _ = make_heap()
        a = heap.malloc(16)
        b = heap.malloc(16)
        assert b >= a + 16

    def test_allocation_failure_returns_none(self):
        heap, _ = make_heap(size_bytes=64)
        assert heap.malloc(1024) is None
        assert heap.stats.failed_allocs == 1

    def test_free_then_reuse(self):
        heap, _ = make_heap(size_bytes=128)
        a = heap.malloc(32)
        heap.free(a)
        b = heap.malloc(32)
        assert b == a

    def test_used_and_free_bytes(self):
        heap, _ = make_heap(size_bytes=256)
        heap.malloc(32)
        assert heap.used_bytes() >= 32
        assert heap.free_bytes() > 0
        assert heap.live_allocations() == 1

    def test_alignment(self):
        heap, _ = make_heap()
        first = heap.malloc(5)
        second = heap.malloc(5)
        assert first % 4 == 0 and second % 4 == 0

    def test_requires_initialize(self):
        memory = ArrayBackedMemory(256)
        accessor = CountingAccessor(memory.read, memory.write)
        heap = FreeListHeap(accessor, base=0, size_bytes=256)
        with pytest.raises(HeapError):
            heap.malloc(8)

    def test_constructor_validation(self):
        memory = ArrayBackedMemory(64)
        accessor = CountingAccessor(memory.read, memory.write)
        with pytest.raises(ValueError):
            FreeListHeap(accessor, base=0, size_bytes=4)
        with pytest.raises(ValueError):
            FreeListHeap(accessor, base=0, size_bytes=64, alignment=3)


class TestFreeAndCoalesce:
    def test_double_free_rejected(self):
        heap, _ = make_heap()
        address = heap.malloc(16)
        heap.free(address)
        with pytest.raises(HeapError):
            heap.free(address)

    def test_free_of_garbage_rejected(self):
        heap, _ = make_heap()
        with pytest.raises(HeapError):
            heap.free(4096)

    def test_eager_forward_coalesce(self):
        heap, _ = make_heap(size_bytes=256)
        a = heap.malloc(32)
        b = heap.malloc(32)
        heap.free(b)
        heap.free(a)  # coalesces with the free block after it
        big = heap.malloc(64)
        assert big == a

    def test_full_coalesce_pass(self):
        heap, _ = make_heap(size_bytes=512)
        blocks = [heap.malloc(32) for _ in range(4)]
        for address in blocks:
            heap.free(address)
        heap.coalesce()
        assert len(heap.walk()) == 1
        assert heap.live_allocations() == 0

    def test_free_rejects_corrupted_next_block_header(self):
        """Eager coalesce must validate the neighbour header (like malloc):
        a corrupted next_size must raise instead of silently producing a
        merged block that overruns the region."""
        heap, accessor = make_heap(size_bytes=256)
        a = heap.malloc(32)
        b = heap.malloc(32)
        heap.free(b)
        # Corrupt the header of the free block following `a`: a size that
        # would run past the end of the region.
        next_header = a - HEADER_BYTES + accessor.read_word(a - HEADER_BYTES)
        accessor.write_word(next_header, 1 << 20)
        with pytest.raises(HeapError):
            heap.free(a)

    def test_free_rejects_undersized_next_block_header(self):
        heap, accessor = make_heap(size_bytes=256)
        a = heap.malloc(32)
        b = heap.malloc(32)
        heap.free(b)
        next_header = a - HEADER_BYTES + accessor.read_word(a - HEADER_BYTES)
        accessor.write_word(next_header, 3)  # smaller than a header: corrupt
        with pytest.raises(HeapError):
            heap.free(a)

    def test_fragmentation_prevents_large_alloc_until_coalesce(self):
        heap, _ = make_heap(size_bytes=4096 + HEADER_BYTES)
        blocks = [heap.malloc(256) for _ in range(8)]
        assert all(b is not None for b in blocks)
        for address in blocks:
            heap.free(address)
        heap.coalesce()
        assert heap.malloc(2048) is not None


class TestAccessorAccounting:
    def test_malloc_costs_accesses(self):
        heap, accessor = make_heap()
        before = accessor.accesses
        heap.malloc(16)
        assert accessor.accesses > before

    def test_walk_cost_grows_with_blocks(self):
        heap, accessor = make_heap(size_bytes=4096)
        for _ in range(8):
            heap.malloc(16)
        before = accessor.accesses
        heap.malloc(16)
        cost_late = accessor.accesses - before
        fresh_heap, fresh_accessor = make_heap(size_bytes=4096)
        before = fresh_accessor.accesses
        fresh_heap.malloc(16)
        cost_early = fresh_accessor.accesses - before
        assert cost_late > cost_early  # first-fit walks past used blocks


class TestConsistency:
    def test_check_consistency_on_fresh_heap(self):
        heap, _ = make_heap()
        heap.check_consistency()

    def test_blocks_tile_the_region(self):
        heap, _ = make_heap(size_bytes=1024)
        for size in (16, 64, 32, 128):
            heap.malloc(size)
        heap.check_consistency()
        blocks = heap.walk()
        assert blocks[0][0] == 0
        assert sum(size for _, size, _ in blocks) == 1024

    def test_nonzero_base(self):
        heap, _ = make_heap(size_bytes=512, base=256)
        address = heap.malloc(16)
        assert address >= 256 + HEADER_BYTES
        heap.check_consistency()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["alloc", "free"]),
                              st.integers(min_value=1, max_value=96)),
                    min_size=1, max_size=60))
    def test_random_workload_invariants(self, operations):
        heap, _ = make_heap(size_bytes=2048)
        live = []
        for kind, size in operations:
            if kind == "alloc" or not live:
                address = heap.malloc(size)
                if address is not None:
                    live.append((address, size))
            else:
                address, _ = live.pop(size % len(live))
                heap.free(address)
            heap.check_consistency()
        # Every live allocation's payload stays within the region.
        for address, size in live:
            assert 0 < address < 2048
        assert heap.live_allocations() == len(live)
