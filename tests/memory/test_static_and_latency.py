"""Tests for the static memory module, latency models and element encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.fabric import BusOp, BusRequest, ResponseStatus
from repro.memory import (
    DataType,
    Endianness,
    LatencyModel,
    StaticMemory,
    decode_element,
    encode_element,
    make_page_hit_model,
    sdram_latency,
    sram_latency,
    to_signed,
)


def run_slave(slave, request, offset):
    """Drive a BusSlave generator to completion outside a simulator."""
    generator = slave.serve(request, offset)
    cycles = 0
    while True:
        try:
            next(generator)
            cycles += 1
        except StopIteration as stop:
            cycles += 1
            return stop.value, cycles


class TestStaticMemory:
    def test_word_write_read(self):
        mem = StaticMemory(256)
        run_slave(mem, BusRequest(0, BusOp.WRITE, 0, data=0x12345678), 0x10)
        response, _ = run_slave(mem, BusRequest(0, BusOp.READ, 0), 0x10)
        assert response.data == 0x12345678

    def test_byte_and_halfword_access(self):
        mem = StaticMemory(64)
        run_slave(mem, BusRequest(0, BusOp.WRITE, 0, data=0xAB, size=1), 3)
        response, _ = run_slave(mem, BusRequest(0, BusOp.READ, 0, size=1), 3)
        assert response.data == 0xAB
        run_slave(mem, BusRequest(0, BusOp.WRITE, 0, data=0xBEEF, size=2), 8)
        response, _ = run_slave(mem, BusRequest(0, BusOp.READ, 0, size=2), 8)
        assert response.data == 0xBEEF

    def test_endianness_little_vs_big(self):
        little = StaticMemory(16, endianness=Endianness.LITTLE)
        big = StaticMemory(16, endianness=Endianness.BIG)
        for mem in (little, big):
            run_slave(mem, BusRequest(0, BusOp.WRITE, 0, data=0x11223344), 0)
        assert little.dump_bytes(0, 4) == b"\x44\x33\x22\x11"
        assert big.dump_bytes(0, 4) == b"\x11\x22\x33\x44"

    def test_out_of_bounds(self):
        mem = StaticMemory(16)
        response, _ = run_slave(mem, BusRequest(0, BusOp.READ, 0), 20)
        assert response.status is ResponseStatus.SLAVE_ERROR

    def test_burst(self):
        mem = StaticMemory(64)
        run_slave(mem, BusRequest(0, BusOp.WRITE, 0, burst_data=[1, 2, 3]), 0)
        response, _ = run_slave(mem, BusRequest(0, BusOp.READ, 0, burst_length=3), 0)
        assert response.burst_data == [1, 2, 3]
        assert mem.reads == 3 and mem.writes == 3

    def test_burst_out_of_bounds(self):
        mem = StaticMemory(8)
        response, _ = run_slave(
            mem, BusRequest(0, BusOp.WRITE, 0, burst_data=[1, 2, 3]), 0
        )
        assert response.status is ResponseStatus.SLAVE_ERROR

    def test_backdoor_accessors(self):
        mem = StaticMemory(32)
        mem.write_word_backdoor(4, 0xCAFEBABE)
        assert mem.read_word_backdoor(4) == 0xCAFEBABE
        mem.load_bytes(8, b"hi")
        assert mem.dump_bytes(8, 2) == b"hi"
        with pytest.raises(ValueError):
            mem.load_bytes(31, b"toolong")
        with pytest.raises(ValueError):
            mem.dump_bytes(30, 4)

    def test_latency_follows_model(self):
        mem = StaticMemory(64, latency=LatencyModel(read_cycles=3, write_cycles=2))
        _, read_cycles = run_slave(mem, BusRequest(0, BusOp.READ, 0), 0)
        _, write_cycles = run_slave(mem, BusRequest(0, BusOp.WRITE, 0, data=1), 0)
        assert read_cycles == 3
        assert write_cycles == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            StaticMemory(0)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF), st.integers(0, 15))
    def test_word_roundtrip_property(self, value, word_index):
        mem = StaticMemory(64)
        run_slave(mem, BusRequest(0, BusOp.WRITE, 0, data=value), word_index * 4)
        response, _ = run_slave(mem, BusRequest(0, BusOp.READ, 0), word_index * 4)
        assert response.data == value


class TestLatencyModel:
    def test_defaults(self):
        model = LatencyModel()
        assert model.scalar_read() == 1
        assert model.scalar_write() == 1
        assert model.burst_read(4, 16) == 1 + 4
        assert model.alloc(64) == 2
        assert model.free(64) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(read_cycles=-1)

    def test_data_dependent_hook(self):
        model = LatencyModel(read_cycles=1,
                             data_dependent=lambda op, nbytes: nbytes // 4)
        assert model.scalar_read(16) == 5

    def test_negative_hook_rejected(self):
        model = LatencyModel(data_dependent=lambda op, nbytes: -1)
        with pytest.raises(ValueError):
            model.scalar_read(4)

    def test_presets(self):
        assert sram_latency().scalar_read() == 1
        assert sdram_latency().scalar_read() > sram_latency().scalar_read()
        page_model = make_page_hit_model()
        first = page_model.scalar_read(4096)
        second = page_model.scalar_read(4096)
        assert first >= second  # second access hits the open page


class TestElementEncoding:
    @pytest.mark.parametrize("data_type,value", [
        (DataType.UINT8, 200),
        (DataType.INT8, -100),
        (DataType.UINT16, 60000),
        (DataType.INT16, -12345),
        (DataType.UINT32, 0xDEADBEEF),
        (DataType.INT32, -100000),
    ])
    @pytest.mark.parametrize("endianness", [Endianness.LITTLE, Endianness.BIG])
    def test_roundtrip(self, data_type, value, endianness):
        payload = encode_element(value, data_type, endianness)
        assert decode_element(payload, data_type, endianness) == value

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            decode_element(b"\x00", DataType.UINT32, Endianness.LITTLE)

    def test_to_signed(self):
        assert to_signed(0xFFFF, DataType.INT16) == -1
        assert to_signed(0xFFFF, DataType.UINT16) == 0xFFFF
        assert to_signed(0x80, DataType.INT8) == -128

    def test_float32_is_raw_bit_pattern(self):
        payload = encode_element(0x3F800000, DataType.FLOAT32, Endianness.LITTLE)
        assert decode_element(payload, DataType.FLOAT32, Endianness.LITTLE) == 0x3F800000

    @given(st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1))
    def test_int16_roundtrip_property(self, value):
        for endianness in (Endianness.LITTLE, Endianness.BIG):
            payload = encode_element(value, DataType.INT16, endianness)
            assert decode_element(payload, DataType.INT16, endianness) == value
