"""Tests for the fully-modelled dynamic memory baseline and the protocol layer."""

import pytest

from repro.fabric import BusOp, BusRequest, ResponseStatus
from repro.memory import (
    IO_ARRAY_BASE,
    REG_COMMAND,
    REG_DATA_IN,
    REG_DIM,
    REG_GO,
    REG_LIVE_COUNT,
    REG_OPCODE,
    REG_SM_ADDR,
    REG_STATUS,
    REG_TYPE,
    REG_USED_BYTES,
    REG_VPTR,
    DataType,
    MemCommand,
    MemOpcode,
    MemStatus,
    ModeledDynamicMemory,
    ProtocolError,
)


def run_slave(slave, request, offset):
    generator = slave.serve(request, offset)
    cycles = 0
    while True:
        try:
            next(generator)
            cycles += 1
        except StopIteration as stop:
            cycles += 1
            return stop.value, cycles


def send_command(memory, command, master_id=0):
    """Send a packed command burst to the command port."""
    request = BusRequest(master_id, BusOp.WRITE, 0, burst_data=command.to_words())
    response, cycles = run_slave(memory, request, REG_COMMAND)
    return response, cycles


class TestProtocolEncoding:
    def test_alloc_roundtrip(self):
        command = MemCommand(MemOpcode.ALLOC, sm_addr=2, dim=10,
                             data_type=DataType.INT16)
        decoded = MemCommand.from_words(command.to_words())
        assert decoded.opcode == MemOpcode.ALLOC
        assert decoded.sm_addr == 2
        assert decoded.dim == 10
        assert decoded.data_type == DataType.INT16

    def test_write_roundtrip(self):
        command = MemCommand(MemOpcode.WRITE, vptr=0x40, offset=3, data=99)
        decoded = MemCommand.from_words(command.to_words())
        assert (decoded.vptr, decoded.offset, decoded.data) == (0x40, 3, 99)

    def test_short_command_rejected(self):
        with pytest.raises(ProtocolError):
            MemCommand.from_words([int(MemOpcode.ALLOC)])

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ProtocolError):
            MemCommand.from_words([0xFF, 0])

    def test_missing_operands_rejected(self):
        with pytest.raises(ProtocolError):
            MemCommand.from_words([int(MemOpcode.WRITE), 0, 1])


class TestAllocFreeReadWrite:
    def test_alloc_returns_pointer(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(
            memory, MemCommand(MemOpcode.ALLOC, dim=16, data_type=DataType.UINT32)
        )
        assert response.ok
        assert response.data > 0

    def test_write_then_read(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(
            memory, MemCommand(MemOpcode.ALLOC, dim=4, data_type=DataType.UINT32)
        )
        vptr = response.data
        send_command(memory, MemCommand(MemOpcode.WRITE, vptr=vptr, offset=2, data=77))
        response, _ = send_command(memory, MemCommand(MemOpcode.READ, vptr=vptr, offset=2))
        assert response.data == 77

    def test_signed_element_roundtrip(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(
            memory, MemCommand(MemOpcode.ALLOC, dim=4, data_type=DataType.INT16)
        )
        vptr = response.data
        send_command(memory, MemCommand(MemOpcode.WRITE, vptr=vptr, offset=1,
                                        data=-1234 & 0xFFFFFFFF))
        response, _ = send_command(memory, MemCommand(MemOpcode.READ, vptr=vptr, offset=1))
        assert response.data == (-1234) & 0xFFFFFFFF

    def test_free_then_read_fails(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(memory, MemCommand(MemOpcode.ALLOC, dim=4))
        vptr = response.data
        send_command(memory, MemCommand(MemOpcode.FREE, vptr=vptr))
        response, _ = send_command(memory, MemCommand(MemOpcode.READ, vptr=vptr))
        assert not response.ok
        assert memory.last_status == MemStatus.ERR_INVALID_PTR

    def test_capacity_exhaustion(self):
        memory = ModeledDynamicMemory(256)
        response, _ = send_command(memory, MemCommand(MemOpcode.ALLOC, dim=1000))
        assert not response.ok
        assert memory.last_status == MemStatus.ERR_FULL

    def test_out_of_range_access(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(memory, MemCommand(MemOpcode.ALLOC, dim=4))
        vptr = response.data
        response, _ = send_command(memory, MemCommand(MemOpcode.READ, vptr=vptr, offset=10))
        assert memory.last_status == MemStatus.ERR_OUT_OF_RANGE

    def test_bad_sm_addr(self):
        memory = ModeledDynamicMemory(4096, sm_addr=1)
        response, _ = send_command(memory, MemCommand(MemOpcode.ALLOC, sm_addr=3, dim=4))
        assert memory.last_status == MemStatus.ERR_BAD_SM_ADDR

    def test_query_and_diagnostics(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(
            memory, MemCommand(MemOpcode.ALLOC, dim=8, data_type=DataType.UINT16)
        )
        vptr = response.data
        response, _ = send_command(memory, MemCommand(MemOpcode.QUERY, vptr=vptr))
        assert response.data == 16
        assert memory.live_count() == 1
        assert memory.used_bytes() == 16

    def test_pointer_arithmetic_access(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(
            memory, MemCommand(MemOpcode.ALLOC, dim=8, data_type=DataType.UINT32)
        )
        vptr = response.data
        send_command(memory, MemCommand(MemOpcode.WRITE, vptr=vptr, offset=3, data=55))
        # Access the same element through an interior pointer (vptr + 12 bytes).
        response, _ = send_command(memory, MemCommand(MemOpcode.READ, vptr=vptr + 12))
        assert response.data == 55


class TestArraysAndReservation:
    def test_array_write_read(self):
        memory = ModeledDynamicMemory(8192)
        response, _ = send_command(
            memory, MemCommand(MemOpcode.ALLOC, dim=16, data_type=DataType.UINT32)
        )
        vptr = response.data
        payload = list(range(100, 116))
        run_slave(memory, BusRequest(0, BusOp.WRITE, 0, burst_data=payload),
                  IO_ARRAY_BASE)
        send_command(memory, MemCommand(MemOpcode.WRITE_ARRAY, vptr=vptr, dim=16))
        response, _ = send_command(
            memory, MemCommand(MemOpcode.READ_ARRAY, vptr=vptr, dim=16)
        )
        assert response.ok
        readback, _ = run_slave(
            memory, BusRequest(0, BusOp.READ, 0, burst_length=16), IO_ARRAY_BASE
        )
        assert readback.burst_data == payload

    def test_reservation_blocks_other_master(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = send_command(memory, MemCommand(MemOpcode.ALLOC, dim=4),
                                   master_id=0)
        vptr = response.data
        send_command(memory, MemCommand(MemOpcode.RESERVE, vptr=vptr), master_id=0)
        response, _ = send_command(
            memory, MemCommand(MemOpcode.WRITE, vptr=vptr, data=1), master_id=1
        )
        assert memory.last_status == MemStatus.ERR_RESERVED
        response, _ = send_command(memory, MemCommand(MemOpcode.FREE, vptr=vptr),
                                   master_id=1)
        assert memory.last_status == MemStatus.ERR_RESERVED
        # The owner can still write and eventually release.
        send_command(memory, MemCommand(MemOpcode.WRITE, vptr=vptr, data=1), master_id=0)
        assert memory.last_status == MemStatus.OK
        send_command(memory, MemCommand(MemOpcode.RELEASE, vptr=vptr), master_id=0)
        send_command(memory, MemCommand(MemOpcode.WRITE, vptr=vptr, data=2), master_id=1)
        assert memory.last_status == MemStatus.OK


class TestRegisterInterface:
    def test_staged_register_operation(self):
        memory = ModeledDynamicMemory(4096)
        pokes = [
            (REG_OPCODE, int(MemOpcode.ALLOC)),
            (REG_SM_ADDR, 0),
            (REG_DIM, 8),
            (REG_TYPE, int(DataType.UINT32)),
        ]
        for offset, value in pokes:
            run_slave(memory, BusRequest(0, BusOp.WRITE, 0, data=value), offset)
        response, _ = run_slave(memory, BusRequest(0, BusOp.WRITE, 0, data=1), REG_GO)
        assert response.ok and response.data > 0
        status, _ = run_slave(memory, BusRequest(0, BusOp.READ, 0), REG_STATUS)
        assert status.data == int(MemStatus.OK)
        live, _ = run_slave(memory, BusRequest(0, BusOp.READ, 0), REG_LIVE_COUNT)
        assert live.data == 1
        used, _ = run_slave(memory, BusRequest(0, BusOp.READ, 0), REG_USED_BYTES)
        assert used.data == 32

    def test_operand_registers_read_back(self):
        memory = ModeledDynamicMemory(4096)
        run_slave(memory, BusRequest(0, BusOp.WRITE, 0, data=0x77), REG_VPTR)
        response, _ = run_slave(memory, BusRequest(0, BusOp.READ, 0), REG_VPTR)
        assert response.data == 0x77
        run_slave(memory, BusRequest(0, BusOp.WRITE, 0, data=5), REG_DATA_IN)
        response, _ = run_slave(memory, BusRequest(0, BusOp.READ, 0), REG_DATA_IN)
        assert response.data == 5

    def test_malformed_command_burst(self):
        memory = ModeledDynamicMemory(4096)
        request = BusRequest(0, BusOp.WRITE, 0, burst_data=[0xFF, 0])
        response, _ = run_slave(memory, request, REG_COMMAND)
        assert response.status is ResponseStatus.NACK
        assert memory.last_status == MemStatus.ERR_MALFORMED

    def test_access_outside_window(self):
        memory = ModeledDynamicMemory(4096)
        response, _ = run_slave(memory, BusRequest(0, BusOp.READ, 0), 0x10000)
        assert response.status is ResponseStatus.SLAVE_ERROR


class TestTiming:
    def test_alloc_cost_grows_with_heap_occupancy(self):
        memory = ModeledDynamicMemory(64 * 1024)
        _, first_cycles = send_command(memory, MemCommand(MemOpcode.ALLOC, dim=4))
        for _ in range(20):
            send_command(memory, MemCommand(MemOpcode.ALLOC, dim=4))
        _, late_cycles = send_command(memory, MemCommand(MemOpcode.ALLOC, dim=4))
        assert late_cycles > first_cycles

    def test_array_cost_scales_with_length(self):
        memory = ModeledDynamicMemory(64 * 1024)
        response, _ = send_command(memory, MemCommand(MemOpcode.ALLOC, dim=256))
        vptr = response.data
        _, short_cycles = send_command(
            memory, MemCommand(MemOpcode.READ_ARRAY, vptr=vptr, dim=4)
        )
        _, long_cycles = send_command(
            memory, MemCommand(MemOpcode.READ_ARRAY, vptr=vptr, dim=128)
        )
        assert long_cycles > short_cycles

    def test_heap_access_counter_exposed(self):
        memory = ModeledDynamicMemory(4096)
        send_command(memory, MemCommand(MemOpcode.ALLOC, dim=4))
        assert memory.heap_accesses() > 0
