"""Tests for the host memory layer (calloc/free semantics, stats, limits)."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import (
    HostAccessError,
    HostAllocationError,
    HostMemory,
)


class TestCallocFree:
    def test_calloc_returns_zeroed_block(self):
        host = HostMemory()
        block = host.calloc(16, 4)
        assert len(block) == 64
        assert block.read_bytes(0, 64) == bytes(64)

    def test_malloc_is_calloc_of_bytes(self):
        host = HostMemory()
        block = host.malloc(10)
        assert len(block) == 10

    def test_write_then_read(self):
        host = HostMemory()
        block = host.calloc(4, 4)
        block.write_bytes(4, b"\x01\x02\x03\x04")
        assert block.read_bytes(4, 4) == b"\x01\x02\x03\x04"

    def test_each_allocation_gets_distinct_handle(self):
        host = HostMemory()
        a = host.calloc(1, 4)
        b = host.calloc(1, 4)
        assert a.handle != b.handle
        assert host.block_by_handle(a.handle) is a

    def test_free_releases(self):
        host = HostMemory()
        block = host.calloc(8, 4)
        host.free(block)
        assert host.live_blocks == 0
        assert host.check_all_freed()

    def test_double_free_rejected(self):
        host = HostMemory()
        block = host.calloc(8, 4)
        host.free(block)
        with pytest.raises(HostAccessError):
            host.free(block)

    def test_use_after_free_rejected(self):
        host = HostMemory()
        block = host.calloc(8, 4)
        host.free(block)
        with pytest.raises(HostAccessError):
            block.read_bytes(0, 4)
        with pytest.raises(HostAccessError):
            block.write_bytes(0, b"\x00")

    def test_out_of_bounds_access_rejected(self):
        host = HostMemory()
        block = host.calloc(2, 4)
        with pytest.raises(HostAccessError):
            block.read_bytes(6, 4)
        with pytest.raises(HostAccessError):
            block.write_bytes(-1, b"\x00")

    def test_invalid_calloc_arguments(self):
        host = HostMemory()
        with pytest.raises(HostAllocationError):
            host.calloc(-1, 4)
        with pytest.raises(HostAllocationError):
            host.calloc(4, 0)

    def test_unknown_handle(self):
        host = HostMemory()
        with pytest.raises(HostAccessError):
            host.block_by_handle(42)


class TestLimitsAndStats:
    def test_limit_enforced(self):
        host = HostMemory(limit_bytes=100)
        host.calloc(10, 4)
        with pytest.raises(HostAllocationError):
            host.calloc(100, 1)

    def test_limit_frees_make_room(self):
        host = HostMemory(limit_bytes=100)
        block = host.calloc(25, 4)
        host.free(block)
        host.calloc(25, 4)  # fits again

    def test_stats_track_live_and_peak(self):
        host = HostMemory()
        a = host.calloc(10, 4)
        b = host.calloc(5, 4)
        host.free(a)
        stats = host.stats
        assert stats.alloc_calls == 2
        assert stats.free_calls == 1
        assert stats.live_bytes == 20
        assert stats.peak_live_bytes == 60
        assert stats.bytes_allocated == 60
        assert stats.bytes_freed == 40
        assert b.size == 20
        assert "live_bytes" in stats.as_dict()

    def test_native_access_counters(self):
        host = HostMemory()
        block = host.calloc(4, 4)
        block.write_bytes(0, b"abcd")
        block.read_bytes(0, 4)
        block.read_bytes(4, 4)
        assert host.stats.native_writes == 1
        assert host.stats.native_reads == 2

    @given(st.lists(st.integers(min_value=1, max_value=256), min_size=1, max_size=40))
    def test_live_bytes_invariant(self, sizes):
        host = HostMemory()
        blocks = [host.malloc(size) for size in sizes]
        assert host.stats.live_bytes == sum(sizes)
        for block in blocks[::2]:
            host.free(block)
        expected = sum(sizes) - sum(sizes[::2])
        assert host.stats.live_bytes == expected
        assert host.stats.peak_live_bytes == sum(sizes)
        assert host.live_blocks == len(blocks) - len(blocks[::2])
