"""Tests for the analysis metrics and the sweep driver."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    best_point,
    degradation,
    expand_grid,
    geometric_mean,
    harmonic_mean,
    overhead,
    percent,
    run_sweep,
    speedup,
    summarize,
    sweep_table,
)
from repro.soc import PlatformConfig
from repro.sw.workloads import make_fir_task


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        assert speedup(10.0, 0.0) == float("inf")

    def test_degradation_matches_paper_convention(self):
        assert degradation(1000.0, 800.0) == pytest.approx(0.20)
        assert degradation(0.0, 10.0) == 0.0

    def test_overhead(self):
        assert overhead(1.0, 1.2) == pytest.approx(0.2)
        assert overhead(0.0, 5.0) == 0.0

    def test_means(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert harmonic_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            harmonic_mean([0.0])

    def test_summarize(self):
        summary = summarize([3, 1, 2])
        assert summary["count"] == 3
        assert summary["min"] == 1 and summary["max"] == 3
        assert summary["median"] == 2
        assert summarize([])["count"] == 0
        assert summarize([1, 2, 3, 4])["median"] == pytest.approx(2.5)

    def test_percent(self):
        assert percent(0.196) == "19.6%"
        assert percent(0.5, digits=0) == "50%"

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20))
    def test_mean_ordering_property(self, values):
        geo = geometric_mean(values)
        harm = harmonic_mean(values)
        arith = sum(values) / len(values)
        assert harm <= geo + 1e-6
        assert geo <= arith + 1e-6


class TestSweep:
    def test_expand_grid(self):
        grid = expand_grid({"a": [1, 2], "b": ["x"]})
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
        assert expand_grid({}) == [{}]

    def test_run_sweep_over_memory_counts(self):
        samples = list(range(16))
        taps = [1, 2, 1]

        def tasks(config):
            return [make_fir_task(samples, taps) for _ in range(config.num_pes)]

        base = PlatformConfig(num_pes=1, num_memories=1)
        with pytest.warns(DeprecationWarning):
            points = run_sweep(base, {"num_memories": [1, 2]}, tasks)
        assert len(points) == 2
        assert all(point.report.all_pes_finished for point in points)
        table = sweep_table(points)
        assert "num_memories=1" in table and "num_memories=2" in table
        best = best_point(points)
        assert best in points

    def test_best_point_empty(self):
        with pytest.raises(ValueError):
            best_point([])
