"""Tests of the BENCH_kernel.json diff tool (repro.analysis.bench_compare)."""

import json

import pytest

from repro.analysis.bench_compare import (
    compare_bench_entries,
    compare_bench_files,
    format_comparison,
    main,
    regressions,
)
from repro.api.perf import SCHEMA


def write_bench(path, entries):
    payload = {"schema": SCHEMA, "count": len(entries), "entries": entries}
    path.write_text(json.dumps(payload))
    return str(path)


def entry(cps, wallclock=1.0):
    return {"cycles_per_second": cps, "wallclock_seconds": wallclock}


class TestCompare:
    def test_shared_added_removed_keys(self):
        rows = compare_bench_entries(
            {"e1/a": entry(100.0), "e1/gone": entry(50.0)},
            {"e1/a": entry(150.0), "e2/new": entry(70.0)},
        )
        by_key = {row["key"]: row for row in rows}
        assert set(by_key) == {"e1/a", "e1/gone", "e2/new"}
        assert by_key["e1/a"]["status"] == "both"
        assert by_key["e1/a"]["delta"] == pytest.approx(0.5)
        assert by_key["e1/gone"]["status"] == "removed"
        assert by_key["e1/gone"]["delta"] is None
        assert by_key["e2/new"]["status"] == "added"

    def test_rows_sorted_by_key(self):
        rows = compare_bench_entries(
            {"b/x": entry(1.0), "a/y": entry(1.0)},
            {"b/x": entry(1.0), "a/y": entry(1.0)},
        )
        assert [row["key"] for row in rows] == ["a/y", "b/x"]

    def test_custom_metric_and_missing_field(self):
        rows = compare_bench_entries(
            {"e/a": {"events_per_second": 10.0, "wallclock_seconds": 1.0}},
            {"e/a": {"wallclock_seconds": 2.0}},
            metric="events_per_second",
        )
        [row] = rows
        assert row["old"] == 10.0
        assert row["new"] is None
        assert row["delta"] is None

    def test_compare_files_round_trip(self, tmp_path):
        old = write_bench(tmp_path / "old.json",
                          {"e4/p4": entry(1000.0, 2.0)})
        new = write_bench(tmp_path / "new.json",
                          {"e4/p4": entry(800.0, 2.5)})
        [row] = compare_bench_files(old, new)
        assert row["delta"] == pytest.approx(-0.2)
        assert row["old_wallclock"] == 2.0
        assert row["new_wallclock"] == 2.5

    def test_missing_file_treated_as_empty(self, tmp_path):
        new = write_bench(tmp_path / "new.json", {"e/a": entry(5.0)})
        [row] = compare_bench_files(str(tmp_path / "absent.json"), new)
        assert row["status"] == "added"

    def test_regression_filter(self):
        rows = compare_bench_entries(
            {"a": entry(100.0), "b": entry(100.0), "c": entry(100.0)},
            {"a": entry(95.0), "b": entry(50.0), "c": entry(130.0)},
        )
        slow = regressions(rows, threshold=0.1)
        assert [row["key"] for row in slow] == ["b"]


class TestFormatting:
    def test_table_contains_rows_and_delta(self):
        rows = compare_bench_entries({"e/a": entry(100.0)},
                                     {"e/a": entry(150.0)})
        table = format_comparison(rows)
        assert "e/a" in table
        assert "+50.0%" in table

    def test_empty_comparison(self):
        assert "no bench entries" in format_comparison([])


class TestCli:
    def test_main_prints_table(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json", {"e/a": entry(100.0)})
        new = write_bench(tmp_path / "new.json", {"e/a": entry(110.0)})
        assert main([old, new]) == 0
        assert "+10.0%" in capsys.readouterr().out

    def test_main_fail_threshold(self, tmp_path, capsys):
        old = write_bench(tmp_path / "old.json", {"e/a": entry(100.0)})
        new = write_bench(tmp_path / "new.json", {"e/a": entry(10.0)})
        assert main([old, new, "--fail-threshold", "0.5"]) == 1
        assert "regressions" in capsys.readouterr().out

    def test_main_threshold_pass(self, tmp_path):
        old = write_bench(tmp_path / "old.json", {"e/a": entry(100.0)})
        new = write_bench(tmp_path / "new.json", {"e/a": entry(99.0)})
        assert main([old, new, "--fail-threshold", "0.5"]) == 0
