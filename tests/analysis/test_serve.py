"""The sweep observatory front door: offline queries and HTTP endpoints."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ExperimentRunner, PlatformBuilder, scenario_grid
from repro.analysis.serve import DashboardData, main, serve
from repro.store import ResultStore, SweepMonitor


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    """One completed small sweep: store + event log + a trace artifact."""
    root = tmp_path_factory.mktemp("sweep")
    store_path = str(root / "sweep.sqlite")
    events_path = str(root / "sweep.events.jsonl")
    traces = root / "traces"
    traces.mkdir()
    (traces / "run.trace.json").write_text('{"traceEvents": []}')
    config = PlatformBuilder().pes(1).wrapper_memories(1).build()
    grid = scenario_grid("fir", config, "fir",
                         param_grid={"num_samples": [8, 12]},
                         params={"seed": 3}, seed=7)
    store = ResultStore(store_path)
    with SweepMonitor(log_path=events_path, live=False) as monitor:
        ExperimentRunner(grid, store=store, monitor=monitor).run()
    store.close()
    return {"root": root, "store": store_path, "events": events_path,
            "traces": str(traces)}


@pytest.fixture(scope="module")
def data(sweep_dir):
    return DashboardData(store_path=sweep_dir["store"],
                         traces_dir=sweep_dir["traces"])


class TestDashboardData:
    def test_events_log_auto_discovered_next_to_store(self, sweep_dir, data):
        assert data.events_path == sweep_dir["events"]

    def test_results_rows_and_filters(self, data):
        payload = data.results()
        assert payload["count"] == 2
        names = [row["scenario"] for row in payload["rows"]]
        assert names == sorted(names)
        assert data.results(scenario="num_samples=8")["count"] == 1
        assert data.results(status="failed")["count"] == 0
        limited = data.results(limit=1)
        assert limited["count"] == 2 and len(limited["rows"]) == 1

    def test_result_detail_by_key(self, data):
        key = data.results()["rows"][0]["key"]
        detail = data.result(key)
        assert detail["found"]
        assert detail["result"]["report"]["simulated_cycles"] > 0
        assert not data.result("0" * 64)["found"]

    def test_progress_from_event_log(self, data):
        progress = data.progress()
        assert progress["done"] == 2
        assert progress["counts"]["finished"] == 2
        assert progress["ended"]

    def test_bench_deltas_against_committed_baseline(self, data):
        payload = data.bench()
        # Both sides default to the committed BENCH_kernel.json: every
        # shared key has delta 0 and nothing regresses.
        assert payload["rows"], "committed baseline should have entries"
        assert all(row["status"] == "both" for row in payload["rows"])
        assert payload["regressed"] == []

    def test_traces_listing(self, data):
        payload = data.traces()
        assert [f["name"] for f in payload["files"]] == ["run.trace.json"]
        assert data.trace_path("run.trace.json") is not None
        assert data.trace_path("../escape.json") is None
        assert data.trace_path("absent.json") is None

    def test_unlisted_extensions_are_not_served(self, sweep_dir, data):
        # A stray file in the traces dir is neither listed nor fetchable.
        stray = sweep_dir["root"] / "traces" / "secrets.txt"
        stray.write_text("not a trace")
        try:
            names = [f["name"] for f in data.traces()["files"]]
            assert "secrets.txt" not in names
            assert data.trace_path("secrets.txt") is None
        finally:
            stray.unlink()

    def test_missing_artifacts_are_empty_not_fatal(self, tmp_path):
        empty = DashboardData(store_path=str(tmp_path / "none.sqlite"))
        assert empty.results()["count"] == 0
        assert empty.progress()["total"] == 0
        assert empty.traces()["files"] == []
        assert not empty.result("0" * 64)["found"]

    def test_index_html_renders(self, data):
        page = data.index_html()
        assert "sweep observatory" in page
        assert "fir[num_samples=8]" in page
        assert "passed" in page


class TestHttpServer:
    @pytest.fixture(scope="class")
    def base_url(self, data):
        server = serve(data, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()
        server.server_close()

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()

    def test_html_index(self, base_url):
        status, body = self._get(base_url + "/")
        assert status == 200
        assert b"sweep observatory" in body

    def test_api_results_with_query(self, base_url):
        status, body = self._get(
            base_url + "/api/results?status=passed&limit=1")
        payload = json.loads(body)
        assert status == 200
        assert payload["count"] == 2 and len(payload["rows"]) == 1

    def test_api_result_detail(self, base_url, data):
        key = data.results()["rows"][0]["key"]
        status, body = self._get(base_url + f"/api/result/{key}")
        assert status == 200 and json.loads(body)["found"]

    def test_api_progress_and_bench_and_traces(self, base_url):
        for route in ("/api/progress", "/api/bench", "/api/traces"):
            status, body = self._get(base_url + route)
            assert status == 200, route
            json.loads(body)

    def test_trace_download(self, base_url):
        status, body = self._get(base_url + "/traces/run.trace.json")
        assert status == 200
        assert json.loads(body) == {"traceEvents": []}

    def test_unknown_route_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(base_url + "/api/nope")
        assert excinfo.value.code == 404


class TestQueryCli:
    def test_query_results_table(self, sweep_dir, capsys):
        rc = main(["query", "results", "--store", sweep_dir["store"],
                   "--table"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fir[num_samples=8]" in out and "passed" in out

    def test_query_results_json(self, sweep_dir, capsys):
        rc = main(["query", "results", "--store", sweep_dir["store"],
                   "--status", "passed"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and payload["count"] == 2

    def test_query_progress(self, sweep_dir, capsys):
        rc = main(["query", "progress", "--store", sweep_dir["store"],
                   "--events", sweep_dir["events"]])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and payload["done"] == 2

    def test_query_bench(self, capsys):
        rc = main(["query", "bench"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and payload["metric"] == "cycles_per_second"

    def test_query_result_requires_key(self, sweep_dir, capsys):
        rc = main(["query", "result", "--store", sweep_dir["store"]])
        assert rc == 2
        key = DashboardData(
            store_path=sweep_dir["store"]).results()["rows"][0]["key"]
        rc = main(["query", "result", "--store", sweep_dir["store"],
                   "--key", key])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and payload["found"]
