"""Tests for the deprecated back-compat shims delegating to repro.api."""

import warnings

import pytest

from repro.analysis import run_sweep
from repro.soc import PlatformConfig, run_platform
from repro.sw.workloads import fir_reference, make_fir_task


SAMPLES = list(range(16))
TAPS = [1, 2, 1]


class TestRunPlatformShim:
    def test_warns_and_still_runs(self):
        config = PlatformConfig(num_pes=1, num_memories=1)
        with pytest.warns(DeprecationWarning, match="run_platform"):
            report = run_platform(config, [make_fir_task(SAMPLES, TAPS)])
        assert report.all_pes_finished
        assert report.results["pe0"] == fir_reference(SAMPLES, TAPS)
        assert report.finished == {"pe0": True}

    def test_equivalent_to_api_run_tasks(self):
        from repro.api import run_tasks

        config = PlatformConfig(num_pes=1, num_memories=1)
        with pytest.warns(DeprecationWarning):
            shimmed = run_platform(config, [make_fir_task(SAMPLES, TAPS)])
        direct = run_tasks(config, [make_fir_task(SAMPLES, TAPS)])
        assert shimmed.results == direct.results
        assert shimmed.simulated_time == direct.simulated_time


class TestRunSweepShim:
    def test_warns_and_matches_old_contract(self):
        def tasks(config):
            return [make_fir_task(SAMPLES, TAPS) for _ in range(config.num_pes)]

        base = PlatformConfig(num_pes=1, num_memories=1)
        with pytest.warns(DeprecationWarning, match="run_sweep"):
            points = run_sweep(base, {"num_memories": [1, 2]}, tasks)
        assert [point.label for point in points] == [
            "num_memories=1", "num_memories=2",
        ]
        assert [point.parameters for point in points] == [
            {"num_memories": 1}, {"num_memories": 2},
        ]
        assert all(point.report.all_pes_finished for point in points)
        assert all(point.report.results["pe0"] == fir_reference(SAMPLES, TAPS)
                   for point in points)

    def test_empty_grid_runs_base_point(self):
        base = PlatformConfig(num_pes=1, num_memories=1)
        with pytest.warns(DeprecationWarning):
            points = run_sweep(base, {},
                               lambda config: [make_fir_task(SAMPLES, TAPS)])
        assert len(points) == 1
        assert points[0].label == "base"

    def test_errors_propagate_with_original_type(self):
        # The old hand-written loop let task-factory exceptions escape
        # untouched; the shim preserves that (fail-fast, original type).
        def bad_tasks(config):
            raise ValueError("no tasks for you")

        base = PlatformConfig(num_pes=1, num_memories=1)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="no tasks for you"):
                run_sweep(base, {}, bad_tasks)


class TestShimsWarnExactlyOnce:
    """Each shim call must emit exactly one DeprecationWarning — no more
    (duplicated warnings drown real ones), no fewer (the deprecation must
    stay visible until the shims are dropped)."""

    def test_run_platform_warns_exactly_once_per_call(self):
        config = PlatformConfig(num_pes=1, num_memories=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_platform(config, [make_fir_task(SAMPLES, TAPS)])
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "run_platform" in str(w.message)]
        assert len(deprecations) == 1

    def test_run_sweep_warns_exactly_once_per_call(self):
        base = PlatformConfig(num_pes=1, num_memories=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_sweep(base, {}, lambda config: [make_fir_task(SAMPLES, TAPS)])
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)
                        and "run_sweep" in str(w.message)]
        assert len(deprecations) == 1
        # run_sweep delegates to the new runner internally without routing
        # through its own deprecated sibling.
        assert not any("run_platform" in str(w.message) for w in caught)
