"""Tests for the fluent platform builder."""

import pytest

from repro.api import BuilderError, PlatformBuilder
from repro.memory import Endianness
from repro.soc import ArbitrationKind, InterconnectKind, MemoryKind, PlatformConfig
from repro.sw import FAST_CORE
from repro.wrapper import WrapperDelays


class TestBuilderHappyPath:
    def test_defaults_match_platform_config(self):
        assert PlatformBuilder().build() == PlatformConfig()

    def test_fluent_chain(self):
        config = (PlatformBuilder()
                  .pes(4)
                  .crossbar()
                  .wrapper_memories(2)
                  .clock_period(20)
                  .cycle_driven(memory_work=3, pe_work=9)
                  .named("demo")
                  .build())
        assert config.num_pes == 4
        assert config.num_memories == 2
        assert config.memory_kind is MemoryKind.WRAPPER
        assert config.interconnect is InterconnectKind.CROSSBAR
        assert config.clock_period == 20
        assert config.idle_tick_memories is True
        assert config.idle_tick_work == 3
        assert config.pe_tick_work == 9
        assert config.name == "demo"

    def test_string_conveniences(self):
        config = (PlatformBuilder()
                  .pes(2)
                  .modeled_memories(1)
                  .shared_bus(arbitration="tdma")
                  .endianness("big")
                  .cost_model("fast")
                  .delays("sdram")
                  .build())
        assert config.memory_kind is MemoryKind.MODELED
        assert config.arbitration is ArbitrationKind.TDMA
        assert config.endianness is Endianness.BIG
        assert config.cost_model is FAST_CORE
        assert config.wrapper_delays == WrapperDelays.sdram_like()

    def test_from_config_round_trip(self):
        base = PlatformConfig(num_pes=3, num_memories=2,
                              interconnect=InterconnectKind.CROSSBAR)
        rebuilt = PlatformBuilder.from_config(base).build()
        assert rebuilt == base
        tweaked = PlatformBuilder.from_config(base).pes(5).build()
        assert tweaked.num_pes == 5
        assert tweaked.num_memories == 2

    def test_replace_escape_hatch(self):
        config = PlatformBuilder().replace(arbitration_cycles=3).build()
        assert config.arbitration_cycles == 3

    def test_address_map_allows_base_zero(self):
        config = PlatformBuilder().address_map(0, 0x1_0000).build()
        assert config.memory_base_address == 0
        assert config.memory_window_stride == 0x1_0000
        with pytest.raises(BuilderError):
            PlatformBuilder().address_map(-1, 0x1_0000)
        with pytest.raises(BuilderError):
            PlatformBuilder().address_map(0, 0)

    def test_build_platform(self):
        platform = PlatformBuilder().pes(2).wrapper_memories(2).build_platform()
        assert len(platform.memories) == 2
        assert platform.config.num_pes == 2


class TestArbitrationStaging:
    def test_kind_enum_string_and_aliases(self):
        for spelling in (ArbitrationKind.FIXED_PRIORITY, "fixed_priority",
                         "priority"):
            config = PlatformBuilder().arbitration(spelling).build()
            assert config.arbitration is ArbitrationKind.FIXED_PRIORITY
        assert (PlatformBuilder().arbitration("weighted").build()
                .arbitration is ArbitrationKind.WEIGHTED_ROUND_ROBIN)

    def test_parameters_are_staged_as_tuples(self):
        config = (PlatformBuilder().pes(3)
                  .arbitration("weighted_round_robin", weights=[4, 2, 1])
                  .build())
        assert config.arbitration_weights == (4, 2, 1)
        config = (PlatformBuilder().pes(3)
                  .arbitration("tdma", schedule=[0, 0, 1, 2])
                  .build())
        assert config.arbitration_schedule == (0, 0, 1, 2)
        config = (PlatformBuilder().pes(3)
                  .arbitration("priority", priority_order=[2, 1, 0])
                  .build())
        assert config.arbitration_priority == (2, 1, 0)

    def test_weight_mapping_fills_gaps_with_one(self):
        config = (PlatformBuilder().pes(4)
                  .arbitration("weighted", weights={0: 5, 3: 2})
                  .build())
        assert config.arbitration_weights == (5, 1, 1, 2)

    def test_spec_resolution_uses_pe_count_defaults(self):
        spec = PlatformBuilder().pes(3).arbitration("tdma").build() \
            .arbitration_spec()
        assert spec.kind == "tdma"
        assert spec.schedule == (0, 1, 2)
        spec = (PlatformBuilder().pes(4).arbitration("weighted").build()
                .arbitration_spec())
        assert spec.weights == (4, 3, 2, 1)

    def test_applies_to_every_topology(self):
        for stage in ("crossbar", "mesh", "shared_bus"):
            builder = PlatformBuilder().pes(2).arbitration("priority")
            config = getattr(builder, stage)().build()
            assert config.arbitration is ArbitrationKind.FIXED_PRIORITY

    def test_shared_bus_keeps_staged_policy_and_accepts_aliases(self):
        # shared_bus() without an explicit policy must not reset a staged
        # one; with one it delegates to arbitration() (same aliases).
        config = (PlatformBuilder().arbitration("tdma").shared_bus().build())
        assert config.arbitration is ArbitrationKind.TDMA
        config = PlatformBuilder().shared_bus("weighted").build()
        assert config.arbitration is ArbitrationKind.WEIGHTED_ROUND_ROBIN

    def test_invalid_inputs_rejected(self):
        with pytest.raises(BuilderError, match="unknown arbitration"):
            PlatformBuilder().arbitration("lottery")
        with pytest.raises(BuilderError, match="ArbitrationKind"):
            PlatformBuilder().arbitration(3)
        with pytest.raises(BuilderError, match="not be empty"):
            PlatformBuilder().arbitration("weighted", weights={})
        with pytest.raises(BuilderError, match="weights must be >= 1"):
            PlatformBuilder().arbitration("weighted", weights=(0,)).build()

    def test_weight_mapping_keys_must_be_master_ids(self):
        # Regression: string keys used to escape as a raw TypeError and
        # negative ids were silently dropped from the expanded tuple.
        with pytest.raises(BuilderError, match="master ids"):
            PlatformBuilder().arbitration("weighted", weights={"0": 5})
        with pytest.raises(BuilderError, match="master ids"):
            PlatformBuilder().arbitration("weighted", weights={-1: 9, 1: 2})


class TestBuilderValidation:
    @pytest.mark.parametrize("count", [0, -1, 1.5, True])
    def test_bad_pe_count(self, count):
        with pytest.raises(BuilderError):
            PlatformBuilder().pes(count)

    def test_bad_memory_count(self):
        with pytest.raises(BuilderError):
            PlatformBuilder().wrapper_memories(0)

    def test_unknown_memory_kind(self):
        with pytest.raises(BuilderError, match="unknown memory kind"):
            PlatformBuilder().memories(1, "quantum")

    def test_unknown_arbitration(self):
        with pytest.raises(BuilderError, match="unknown arbitration"):
            PlatformBuilder().shared_bus(arbitration="coin_flip")

    def test_unknown_delay_preset(self):
        with pytest.raises(BuilderError, match="unknown delay preset"):
            PlatformBuilder().delays("hbm")

    def test_unknown_cost_model(self):
        with pytest.raises(BuilderError, match="unknown cost model"):
            PlatformBuilder().cost_model("cray")

    def test_unknown_endianness(self):
        with pytest.raises(BuilderError, match="unknown endianness"):
            PlatformBuilder().endianness("middle")

    def test_replace_unknown_field(self):
        with pytest.raises(BuilderError, match="unknown PlatformConfig field"):
            PlatformBuilder().replace(num_cores=4)

    def test_negative_cycle_work(self):
        with pytest.raises(BuilderError):
            PlatformBuilder().cycle_driven(memory_work=-1)

    def test_build_surfaces_config_invariants(self):
        # PlatformConfig's own validation is re-raised as BuilderError.
        with pytest.raises(BuilderError, match="invalid platform description"):
            PlatformBuilder().replace(idle_tick_work=-5).build()

    def test_empty_name(self):
        with pytest.raises(BuilderError):
            PlatformBuilder().named("")
