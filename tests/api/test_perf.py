"""Tests for the perf subsystem: PerfTimer, BenchResult, PerfRecorder."""

import json
import os
import time

import pytest

from repro.api import (
    BenchResult,
    ExperimentRunner,
    PerfRecorder,
    PerfTimer,
    PlatformBuilder,
    Scenario,
    bench_json_path,
    load_bench_entries,
)
from repro.api.perf import ENV_PATH, SCHEMA


def _flush_many(path, rank):
    """Spawn-process body: many small racing flushes into one file."""
    for step in range(10):
        recorder = PerfRecorder(f"bench_{rank}", path=path)
        recorder.record_measurement(f"s{step}", 0.1)
        recorder.flush()


def _raise_mid_replace(*_args, **_kwargs):
    raise RuntimeError("simulated crash")


class TestPerfTimer:
    def test_measures_elapsed_time(self):
        with PerfTimer() as timer:
            sum(range(1000))
        assert timer.seconds > 0


class TestBenchResult:
    def test_rates(self):
        record = BenchResult(bench="b", scenario="s", wallclock_seconds=2.0,
                             simulated_cycles=100, events_fired=50,
                             process_activations=10)
        assert record.events_per_second == 25.0
        assert record.activations_per_second == 5.0
        assert record.cycles_per_second == 50.0
        assert record.key == "b/s"

    def test_zero_wallclock_rates_are_zero(self):
        record = BenchResult(bench="b", scenario="s", wallclock_seconds=0.0,
                             events_fired=50)
        assert record.events_per_second == 0.0

    def test_as_dict_has_normalized_fields(self):
        record = BenchResult(bench="b", scenario="s", wallclock_seconds=1.0,
                             params={"n": 4})
        payload = record.as_dict()
        assert payload["bench"] == "b"
        assert payload["params"] == {"n": 4}
        assert "events_per_second" in payload
        assert "activations_per_second" in payload

    def test_from_report_copies_kernel_stats(self):
        scenario = Scenario(
            name="one",
            config=PlatformBuilder().pes(1).wrapper_memories(1).build(),
            workload="fir", params={"num_samples": 8, "seed": 1}, seed=1,
        )
        result = ExperimentRunner([scenario]).run()[0]
        result.raise_for_status()
        record = BenchResult.from_scenario_result("bench", result)
        assert record.delta_cycles == result.report.kernel_stats["delta_cycles"]
        assert record.process_activations == \
            result.report.kernel_stats["process_activations"]
        assert record.simulated_time == result.report.simulated_time
        assert record.events_per_second > 0


class TestPerfRecorder:
    def test_merge_on_write_accumulates_benches(self, tmp_path):
        path = str(tmp_path / "BENCH_kernel.json")
        first = PerfRecorder("bench_a", path=path)
        first.record_measurement("s1", 0.5)
        first.flush()
        second = PerfRecorder("bench_b", path=path)
        second.record_measurement("s2", 0.25)
        second.flush()
        entries = load_bench_entries(path)
        assert set(entries) == {"bench_a/s1", "bench_b/s2"}
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == SCHEMA
        assert payload["count"] == 2

    def test_rerecording_updates_in_place(self, tmp_path):
        path = str(tmp_path / "bench.json")
        recorder = PerfRecorder("bench", path=path)
        recorder.record_measurement("s", 1.0)
        recorder.flush()
        again = PerfRecorder("bench", path=path)
        again.record_measurement("s", 2.0)
        again.flush()
        entries = load_bench_entries(path)
        assert len(entries) == 1
        assert entries["bench/s"]["wallclock_seconds"] == 2.0

    def test_corrupted_file_is_replaced(self, tmp_path):
        path = str(tmp_path / "bench.json")
        with open(path, "w") as handle:
            handle.write("not json{")
        recorder = PerfRecorder("bench", path=path)
        recorder.record_measurement("s", 1.0)
        recorder.flush()
        assert set(load_bench_entries(path)) == {"bench/s"}

    def test_env_var_overrides_default_path(self, tmp_path, monkeypatch):
        target = str(tmp_path / "custom.json")
        monkeypatch.setenv(ENV_PATH, target)
        assert bench_json_path() == target
        recorder = PerfRecorder("bench")
        assert recorder.path == target

    def test_experiment_runner_records_and_flushes(self, tmp_path):
        path = str(tmp_path / "bench.json")
        scenario = Scenario(
            name="one",
            config=PlatformBuilder().pes(1).wrapper_memories(1).build(),
            workload="fir", params={"num_samples": 8, "seed": 1}, seed=1,
        )
        recorder = PerfRecorder("runner_bench", path=path)
        results = ExperimentRunner([scenario], recorder=recorder).run()
        results[0].raise_for_status()
        entries = load_bench_entries(path)
        assert set(entries) == {"runner_bench/one"}
        entry = entries["runner_bench/one"]
        assert entry["delta_cycles"] == \
            results[0].report.kernel_stats["delta_cycles"]
        assert entry["wallclock_seconds"] > 0

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_bench_entries(str(tmp_path / "absent.json")) == {}

    def test_concurrent_flushes_lose_no_entries(self, tmp_path):
        """Parallel CI shards flush into one bench file; the lock + atomic
        replace must keep every process's rows."""
        import multiprocessing

        path = str(tmp_path / "bench.json")
        context = multiprocessing.get_context("spawn")
        workers = [context.Process(target=_flush_many, args=(path, rank))
                   for rank in range(4)]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=60)
            assert process.exitcode == 0
        entries = load_bench_entries(path)
        assert len(entries) == 4 * 10
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name != "bench.json"]
        assert leftovers == []  # no .tmp or .lock debris

    def test_stale_lock_is_broken_exactly_once(self, tmp_path):
        from repro.api.perf import _LOCK_STALE_S, _break_stale_lock

        lock = str(tmp_path / "bench.json.lock")
        with open(lock, "w") as handle:
            handle.write("dead\n")
        old = time.time() - _LOCK_STALE_S - 10
        os.utime(lock, (old, old))
        assert _break_stale_lock(lock) is True
        assert not os.path.exists(lock)
        # Second waiter racing on the same (now gone) lock: the break is
        # claimed once; the retry path simply re-attempts acquisition.
        assert _break_stale_lock(lock) is True  # ENOENT => retry acquire
        assert os.listdir(str(tmp_path)) == []  # no .break debris

    def test_fresh_lock_is_not_broken(self, tmp_path):
        from repro.api.perf import _break_stale_lock

        lock = str(tmp_path / "bench.json.lock")
        with open(lock, "w") as handle:
            handle.write("alive\n")
        assert _break_stale_lock(lock) is False
        assert os.path.exists(lock)

    def test_flush_proceeds_past_abandoned_lock(self, tmp_path):
        from repro.api.perf import _LOCK_STALE_S

        path = str(tmp_path / "bench.json")
        lock = path + ".lock"
        with open(lock, "w") as handle:
            handle.write("crashed holder\n")
        old = time.time() - _LOCK_STALE_S - 10
        os.utime(lock, (old, old))
        recorder = PerfRecorder("bench", path=path)
        recorder.record_measurement("s", 1.0)
        recorder.flush()
        assert set(load_bench_entries(path)) == {"bench/s"}
        assert not os.path.exists(lock)

    def test_interrupted_flush_leaves_old_file_intact(self, tmp_path,
                                                      monkeypatch):
        path = str(tmp_path / "bench.json")
        recorder = PerfRecorder("bench", path=path)
        recorder.record_measurement("s", 1.0)
        recorder.flush()

        crashing = PerfRecorder("bench", path=path)
        crashing.record_measurement("other", 2.0)
        monkeypatch.setattr(os, "replace",
                            _raise_mid_replace)
        with pytest.raises(RuntimeError, match="simulated crash"):
            crashing.flush()
        monkeypatch.undo()
        entries = load_bench_entries(path)
        assert set(entries) == {"bench/s"}  # old contents survived
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name != "bench.json"]
        assert leftovers == []
