"""Tests for scenario grids, the experiment runner and result writers."""

import csv
import json

import pytest

from repro.api import (
    ExperimentRunner,
    PlatformBuilder,
    Scenario,
    expand_grid,
    results_table,
    run_scenario,
    scenario_grid,
    write_csv,
    write_json,
)


def _base_config():
    return PlatformBuilder().pes(1).wrapper_memories(1).build()


def _fir_grid():
    return scenario_grid(
        "fir", _base_config(), "fir",
        config_grid={"num_memories": [1, 2]},
        param_grid={"num_samples": [8, 12]},
        params={"seed": 3},
    )


def _spin_forever(config, **params):
    """Module-level factory so sharded runs can resolve it in any child."""

    def task(ctx):
        while True:
            yield from ctx.compute(1000)

    return [task]


def _raise_on_build(config, **params):
    raise RuntimeError("deliberately broken workload")


class TestGridExpansion:
    def test_expand_grid(self):
        grid = expand_grid({"a": [1, 2], "b": ["x"]})
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
        assert expand_grid({}) == [{}]

    def test_scenario_grid_cartesian_product(self):
        scenarios = _fir_grid()
        assert len(scenarios) == 4
        assert [s.name for s in scenarios] == [
            "fir[num_memories=1,num_samples=8]",
            "fir[num_memories=1,num_samples=12]",
            "fir[num_memories=2,num_samples=8]",
            "fir[num_memories=2,num_samples=12]",
        ]
        # Config overrides land in the config, params merge with the base.
        assert scenarios[2].config.num_memories == 2
        assert scenarios[1].params == {"seed": 3, "num_samples": 12}
        assert scenarios[3].overrides == {"num_memories": 2, "num_samples": 12}

    def test_empty_grids_yield_single_scenario(self):
        scenarios = scenario_grid("solo", _base_config(), "fir")
        assert len(scenarios) == 1
        assert scenarios[0].name == "solo"


class TestSerialRunner:
    def test_results_in_order_and_passing(self):
        scenarios = _fir_grid()
        results = ExperimentRunner(scenarios).run()
        assert [r.scenario for r in results] == [s.name for s in scenarios]
        assert all(r.passed for r in results)
        assert all(r.report is not None for r in results)

    def test_keep_platforms(self):
        results = ExperimentRunner(_fir_grid()[:1], keep_platforms=True).run()
        assert results[0].platform is not None
        assert results[0].platform.config.num_memories == 1

    def test_workload_error_is_captured(self):
        scenario = Scenario(name="broken", config=_base_config(),
                            workload=_raise_on_build)
        [result] = ExperimentRunner([scenario]).run()
        assert not result.passed
        assert "deliberately broken" in result.error
        with pytest.raises(RuntimeError, match="broken"):
            result.raise_for_status()

    def test_max_time_surfaces_unfinished(self):
        config = _base_config()
        scenario = Scenario(name="stuck", config=config,
                            workload=_spin_forever,
                            max_time=10_000 * config.clock_period)
        [result] = ExperimentRunner([scenario]).run()
        assert not result.passed
        assert result.report is not None
        assert result.report.finished == {"pe0": False}
        assert any("unfinished" in failure for failure in result.failures)

    def test_crashing_check_is_contained_as_failure(self):
        config = _base_config()

        def crashing_check(report):
            return [list(f) for f in report.results["pe0"]]  # None on timeout

        def with_check(cfg, **params):
            from repro.sw import Workload
            built = _spin_forever(cfg)
            return Workload(tasks=built, checks=[crashing_check])

        scenario = Scenario(name="crashcheck", config=config,
                            workload=with_check,
                            max_time=10_000 * config.clock_period)
        [result] = ExperimentRunner([scenario]).run()
        assert result.error is None  # the run itself completed
        assert any("unfinished" in failure for failure in result.failures)
        assert any("crashing_check: raised TypeError" in failure
                   for failure in result.failures)

    def test_empty_runner(self):
        assert ExperimentRunner([]).run() == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExperimentRunner([], shards=0)
        with pytest.raises(ValueError):
            ExperimentRunner([], timeout_s=0)
        with pytest.raises(ValueError):
            ExperimentRunner([], shards=2, keep_platforms=True)


class TestShardedRunner:
    def test_two_shards_match_serial(self):
        scenarios = _fir_grid()
        serial = ExperimentRunner(scenarios).run()
        sharded = ExperimentRunner(scenarios, shards=2).run()
        assert [r.scenario for r in sharded] == [r.scenario for r in serial]
        for a, b in zip(serial, sharded):
            assert b.passed, (b.failures, b.error)
            assert a.report.results == b.report.results
            assert a.report.simulated_time == b.report.simulated_time
            assert a.report.finished == b.report.finished
            assert a.report.total_api_calls() == b.report.total_api_calls()

    def test_more_shards_than_scenarios(self):
        scenarios = _fir_grid()[:2]
        results = ExperimentRunner(scenarios, shards=8).run()
        assert all(r.passed for r in results)

    def test_per_run_timeout_terminates_worker(self):
        config = _base_config()
        scenarios = [
            Scenario(name="stuck", config=config, workload=_spin_forever),
            _fir_grid()[0],
        ]
        results = ExperimentRunner(scenarios, shards=2, timeout_s=2.0).run()
        assert results[0].timed_out
        assert not results[0].passed
        assert "timed out" in results[0].error
        # The healthy scenario still completes normally.
        assert results[1].passed, (results[1].failures, results[1].error)


class TestWriters:
    @pytest.fixture()
    def results(self):
        return ExperimentRunner(_fir_grid()).run()

    def test_results_table(self, results):
        table = results_table(results)
        assert "fir[num_memories=1,num_samples=8]" in table
        assert "simulated_cycles" in table

    def test_write_json_round_trip(self, results, tmp_path):
        path = write_json(results, str(tmp_path / "results.json"))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == "repro.api.results/v1"
        assert payload["count"] == 4 and payload["passed"] == 4
        first = payload["results"][0]
        assert first["scenario"] == results[0].scenario
        assert first["report"]["simulated_cycles"] > 0
        assert first["report"]["finished"] == {"pe0": True}

    def test_write_csv_round_trip(self, results, tmp_path):
        path = write_csv(results, str(tmp_path / "results.csv"))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["scenario"] == results[0].scenario
        assert all(row["status"] == "ok" for row in rows)


class TestSeededReproducibility:
    def test_seed_is_applied_before_workload_build(self):
        import random

        def random_workload(config, **params):
            value = random.randrange(1 << 30)

            def task(ctx):
                yield from ctx.compute(1)
                return value

            return [task]

        scenario = Scenario(name="seeded", config=_base_config(),
                            workload=random_workload, seed=1234)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.report.results == second.report.results

    def test_seeding_does_not_leak_global_rng_state(self):
        import random

        scenario = Scenario(name="seeded", config=_base_config(),
                            workload="fir", params={"num_samples": 8},
                            seed=42)
        random.seed(999)
        expected_next = random.random()
        random.seed(999)
        run_scenario(scenario)
        assert random.random() == expected_next

    def test_capture_errors_false_raises_original(self):
        scenario = Scenario(name="broken", config=_base_config(),
                            workload=_raise_on_build)
        with pytest.raises(RuntimeError, match="deliberately broken"):
            run_scenario(scenario, capture_errors=False)
