"""Tests for the workload registry and the built-in catalog."""

import pytest

from repro.api import PlatformBuilder, Scenario, run_scenario
from repro.sw import Workload, WorkloadError, WorkloadRegistry, as_workload, workload


def _config(pes=1, memories=1):
    return PlatformBuilder().pes(pes).wrapper_memories(memories).build()


class TestRegistryMechanics:
    def test_register_and_create(self):
        registry = WorkloadRegistry()

        @registry.register("probe")
        def _probe(config, *, value=1):
            def task(ctx):
                yield from ctx.compute(1)
                return value

            return [task for _ in range(config.num_pes)]

        built = registry.create("probe", _config(pes=2), value=7)
        assert isinstance(built, Workload)
        assert len(built.tasks) == 2
        assert "probe" in registry
        assert registry.names() == ["probe"]

    def test_duplicate_name_rejected(self):
        registry = WorkloadRegistry()
        registry.register("dup", lambda config: [])
        with pytest.raises(WorkloadError, match="already registered"):
            registry.register("dup", lambda config: [])

    def test_unknown_name_lists_known(self):
        registry = WorkloadRegistry()
        registry.register("known", lambda config: [])
        with pytest.raises(WorkloadError, match="unknown workload 'nope'.*known"):
            registry.get("nope")

    def test_bad_name_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadRegistry().register("")

    def test_as_workload_normalisation(self):
        def task(ctx):
            yield from ctx.compute(1)

        assert as_workload(task).tasks == [task]
        assert as_workload([task, task]).tasks == [task, task]
        wl = Workload(tasks=[task])
        assert as_workload(wl) is wl
        with pytest.raises(WorkloadError):
            as_workload(42)


class TestBuiltinCatalog:
    def test_builtins_registered(self):
        for name in ("fir", "matmul", "producer_consumer", "gsm_encode",
                     "alloc_churn"):
            assert name in workload, name

    @pytest.mark.parametrize("name,pes,params", [
        ("fir", 2, {"num_samples": 12, "seed": 5}),
        ("matmul", 3, {"rows": 4, "inner": 2, "cols": 2, "seed": 1}),
        ("producer_consumer", 2, {"num_items": 6, "fifo_depth": 2}),
        ("alloc_churn", 1, {"iterations": 6, "gsm_frames": 1}),
    ])
    def test_builtin_runs_and_passes_checks(self, name, pes, params):
        scenario = Scenario(name=f"{name}-smoke", config=_config(pes=pes),
                            workload=name, params=params)
        result = run_scenario(scenario)
        assert result.passed, (result.failures, result.error)

    def test_matmul_needs_two_pes(self):
        with pytest.raises(WorkloadError, match="at least 2 PEs"):
            workload.create("matmul", _config(pes=1))

    def test_producer_consumer_needs_even_pes(self):
        with pytest.raises(WorkloadError, match="even number"):
            workload.create("producer_consumer", _config(pes=3))

    def test_checks_catch_wrong_results(self):
        # A workload whose check must fail: compare against a wrong answer.
        built = workload.create("fir", _config(), num_samples=8, seed=2)
        class FakeReport:
            results = {"pe0": [1, 2, 3]}
        messages = [check(FakeReport()) for check in built.checks]
        assert any(isinstance(msg, str) for msg in messages)
