"""Tests for the platform builder running real workloads end to end."""

import pytest

from repro.memory import DataType
from repro.api import run_tasks
from repro.soc import (
    InterconnectKind,
    MemoryKind,
    Platform,
    PlatformConfig,
)
from repro.sw.workloads import (
    fir_reference,
    make_consumer_task,
    make_fir_task,
    make_matmul_producer_task,
    make_matmul_worker_task,
    make_producer_task,
    matmul_reference,
)


class TestPlatformBuild:
    def test_builds_requested_topology(self):
        config = PlatformConfig(num_pes=3, num_memories=2)
        platform = Platform(config)
        assert len(platform.memories) == 2
        assert platform.interconnect.address_map.slaves() == platform.memories

    def test_crossbar_variant(self):
        config = PlatformConfig(num_pes=2, num_memories=2,
                                interconnect=InterconnectKind.CROSSBAR)
        platform = Platform(config)
        assert type(platform.interconnect).__name__ == "Crossbar"

    def test_modeled_memory_variant(self):
        config = PlatformConfig(memory_kind=MemoryKind.MODELED,
                                memory_capacity_bytes=1 << 16)
        platform = Platform(config)
        assert type(platform.memories[0]).__name__ == "ModeledDynamicMemory"

    def test_too_many_tasks_rejected(self):
        platform = Platform(PlatformConfig(num_pes=1))
        platform.add_task(make_fir_task([1, 2, 3], [1]))
        with pytest.raises(ValueError):
            platform.add_task(make_fir_task([1, 2, 3], [1]))

    def test_run_without_tasks_rejected(self):
        with pytest.raises(RuntimeError):
            Platform(PlatformConfig()).run()

    def test_wrappers_share_one_host_memory(self):
        platform = Platform(PlatformConfig(num_memories=3))
        hosts = {id(m.host) for m in platform.memories}
        assert len(hosts) == 1


class TestFirOnPlatform:
    def test_single_pe_fir_matches_reference(self):
        samples = [(i * 37) % 1000 for i in range(64)]
        taps = [3, -1, 2, 7]
        config = PlatformConfig(num_pes=1, num_memories=1)
        report = run_tasks(config, [make_fir_task(samples, taps)])
        assert report.all_pes_finished
        result = report.results["pe0"]
        assert result == fir_reference(samples, taps)
        assert report.simulated_cycles > 0
        assert report.total_transactions() > 0

    def test_fir_on_modeled_baseline_matches_too(self):
        samples = [(i * 13) % 500 for i in range(32)]
        taps = [1, 2, 1]
        config = PlatformConfig(num_pes=1, memory_kind=MemoryKind.MODELED,
                                memory_capacity_bytes=1 << 16)
        report = run_tasks(config, [make_fir_task(samples, taps)])
        assert report.results["pe0"] == fir_reference(samples, taps)

    def test_four_pes_in_parallel(self):
        taps = [1, 1, 1]
        blocks = [[(i * (pe + 3)) % 256 for i in range(32)] for pe in range(4)]
        config = PlatformConfig(num_pes=4, num_memories=1)
        report = run_tasks(
            config, [make_fir_task(block, taps) for block in blocks]
        )
        assert report.all_pes_finished
        for pe, block in enumerate(blocks):
            assert report.results[f"pe{pe}"] == fir_reference(block, taps)

    def test_memory_report_shows_balanced_cleanup(self):
        samples = list(range(16))
        config = PlatformConfig(num_pes=2, num_memories=2)
        platform = Platform(config)
        platform.add_task(make_fir_task(samples, [1, 2], memory_index=0))
        platform.add_task(make_fir_task(samples, [1, 2], memory_index=1))
        report = platform.run()
        for memory_report in report.memory_reports:
            assert memory_report["live_allocations"] == 0


class TestMatmulOnPlatform:
    def test_two_worker_matmul(self):
        a = [[1, 2, 3], [4, 5, 6], [7, 8, 9], [1, 0, 1]]
        b = [[1, 0], [0, 1], [2, 2]]
        shared = {}
        config = PlatformConfig(num_pes=3, num_memories=1)
        platform = Platform(config)
        platform.add_task(make_matmul_producer_task(a, b, shared))
        platform.add_task(make_matmul_worker_task(shared, 0, 2))
        platform.add_task(make_matmul_worker_task(shared, 2, 4))
        report = platform.run()
        assert report.all_pes_finished
        expected = matmul_reference(a, b)
        assert report.results["pe1"] == expected[0:2]
        assert report.results["pe2"] == expected[2:4]


class TestProducerConsumerOnPlatform:
    def test_fifo_delivers_in_order(self):
        items = [i * 11 for i in range(25)]
        shared = {}
        config = PlatformConfig(num_pes=2, num_memories=1)
        platform = Platform(config)
        platform.add_task(make_producer_task(items, fifo_depth=4, shared=shared))
        platform.add_task(make_consumer_task(shared))
        report = platform.run()
        assert report.all_pes_finished
        assert report.results["pe0"] == len(items)
        assert report.results["pe1"] == items
        # All FIFO storage was freed by the consumer.
        assert report.memory_reports[0]["live_allocations"] == 0


class TestIdleTicker:
    def test_ticker_runs_and_platform_still_finishes(self):
        samples = list(range(16))
        config = PlatformConfig(num_pes=1, num_memories=2,
                                idle_tick_memories=True, idle_tick_work=1)
        platform = Platform(config)
        platform.add_task(make_fir_task(samples, [1, 2, 3]))
        report = platform.run()
        assert report.all_pes_finished
        assert platform.ticker is not None
        assert platform.ticker.ticks > 0
        # The wrapper FSM accumulated idle evaluations.
        assert platform.memories[1].idle_cycles > 0

    def test_max_time_with_early_finish_reports_the_finish_time(self):
        """run(duration) clamps to its deadline (sc_start semantics), but a
        platform whose tasks drain before max_time must report the actual
        finish time — not a 50k-cycle slice boundary."""
        def short_task(ctx):
            yield from ctx.compute(100)

        config = PlatformConfig(num_pes=1)
        platform = Platform(config)
        platform.add_task(short_task)
        report = platform.run(max_time=100_000 * config.clock_period)
        assert report.all_pes_finished
        # Well under one run() slice — nowhere near 50_000 cycles.
        assert report.simulated_cycles <= 1_000
        assert report.kernel_stats["end_time"] == report.simulated_time

    def test_max_time_bounds_a_stuck_platform(self):
        def never_ending(ctx):
            while True:
                yield from ctx.compute(1000)

        config = PlatformConfig(num_pes=1)
        platform = Platform(config)
        platform.add_task(never_ending)
        report = platform.run(max_time=100_000 * config.clock_period)
        assert not report.all_pes_finished
        assert report.simulated_time <= 101_000 * config.clock_period

    def test_max_time_surfaces_per_pe_finished_flags(self):
        def never_ending(ctx):
            while True:
                yield from ctx.compute(1000)

        def quick(ctx):
            yield from ctx.compute(10)
            return "done"

        config = PlatformConfig(num_pes=2)
        platform = Platform(config)
        platform.add_task(quick)
        platform.add_task(never_ending)
        report = platform.run(max_time=100_000 * config.clock_period)
        # The report distinguishes "finished with result None" from
        # "never finished": the stuck PE's result stays None *and* its
        # finished flag is False.
        assert report.finished == {"pe0": True, "pe1": False}
        assert report.results["pe1"] is None
        assert report.result_of("pe0") == "done"
        with pytest.raises(KeyError, match="did not finish"):
            report.result_of("pe1")
        assert "finished" in report.as_dict()


class TestApiPlacement:
    def test_each_pe_sees_all_memories(self):
        captured = {}

        def probe(ctx):
            captured["memories"] = ctx.memory_count
            vptr = yield from ctx.smem(1).alloc(4, DataType.UINT32)
            yield from ctx.smem(1).write(vptr, 5)
            value = yield from ctx.smem(1).read(vptr)
            return value

        config = PlatformConfig(num_pes=1, num_memories=3)
        report = run_tasks(config, [probe])
        assert captured["memories"] == 3
        assert report.results["pe0"] == 5
        # Only the second memory saw allocations.
        assert report.memory_reports[1]["total_allocations"] == 1
        assert report.memory_reports[0]["total_allocations"] == 0
