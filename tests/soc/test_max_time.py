"""Regression tests: ``Platform.run(max_time=...)`` with free-running devices.

A periodic auto-start timer keeps the event queue busy forever, so a run
can only end on the ``max_time`` clamp (or when every PE finishes).  These
tests pin the clamp semantics: the reported end time never exceeds the
deadline, ``stats.end_time`` matches the simulator clock, and
``trim_to_last_activity`` still trims drained runs back to their last
real event.
"""

from repro.api import PlatformBuilder, run_tasks
from repro.kernel import Module, Simulator


def build(periodic=True, compare_cycles=100):
    return (PlatformBuilder().pes(1).wrapper_memories(1)
            .timer(compare_cycles=compare_cycles, periodic=periodic,
                   auto_start=True)
            .build())


def never_finishes(ctx):
    ctx.enable_irq(31)          # nothing ever raises line 31
    yield from ctx.wait_irq(31)
    return "unreachable"


class TestMaxTimeClamp:
    def test_run_clamps_at_max_time_with_free_running_timer(self):
        config = build()
        deadline = 1_000 * config.clock_period
        report = run_tasks(config, [never_finishes], max_time=deadline)
        assert not report.all_pes_finished
        assert report.results["pe0"] is None
        assert report.simulated_time <= deadline
        # The periodic timer fired right up to the clamp.
        timer = next(d for d in report.device_reports if d["kind"] == "timer")
        assert timer["expirations"] == 1_000 // 100

    def test_end_time_tracks_simulator_clock(self):
        config = build()
        platform = PlatformBuilder.from_config(config).build_platform()
        platform.add_task(never_finishes)
        deadline = 777 * config.clock_period
        report = platform.run(max_time=deadline)
        sim = platform.simulator
        assert sim.stats.end_time == sim.now
        assert report.simulated_time == sim.now
        assert sim.now <= deadline

    def test_finishing_early_trims_below_max_time(self):
        """A one-shot timer drains the queue; the clamp must not pad."""
        config = build(periodic=False, compare_cycles=50)

        def waiter(ctx):
            line = ctx.devices.timer(0).irq_line
            ctx.enable_irq(line)
            yield from ctx.wait_irq(line)
            return "woke"

        deadline = 10_000 * config.clock_period
        report = run_tasks(config, [waiter], max_time=deadline)
        assert report.results["pe0"] == "woke"
        # The run ends near the 50-cycle expiry, far below the deadline.
        assert report.simulated_cycles < 1_000

    def test_free_running_platform_without_deadline_ends_when_pes_finish(self):
        config = build()

        def quick(ctx):
            line = ctx.devices.timer(0).irq_line
            ctx.enable_irq(line)
            yield from ctx.wait_irq(line)
            return "done"

        report = run_tasks(config, [quick])   # no max_time: must still end
        assert report.results["pe0"] == "done"


class TestSimulatorClamp:
    """Kernel-level: ``Simulator.run(duration)`` with a periodic process."""

    class FreeRunner(Module):
        def __init__(self):
            super().__init__("freerunner")
            self.ticks = 0
            self.add_process(self._tick, name="tick")

        def _tick(self):
            while True:
                yield 100
                self.ticks += 1

    def test_run_stops_exactly_on_deadline(self):
        top = self.FreeRunner()
        sim = Simulator(top)
        stats = sim.run(1_050)
        assert sim.now == 1_050              # sc_start semantics: clock
        assert stats.end_time == 1_050       # lands on the deadline
        assert top.ticks == 10               # tick 11 (t=1100) never fired

    def test_consecutive_runs_resume_from_the_clamp(self):
        top = self.FreeRunner()
        sim = Simulator(top)
        sim.run(250)
        assert top.ticks == 2
        stats = sim.run(250)                 # deadline-relative: to t=500
        assert sim.now == 500
        assert stats.end_time == 500
        assert top.ticks == 5

    def test_trim_is_a_no_op_while_activity_is_pending(self):
        top = self.FreeRunner()
        sim = Simulator(top)
        sim.run(1_050)
        sim.trim_to_last_activity()          # timer still scheduled
        assert sim.now == 1_050
