"""Regression tests for report serialization edge cases.

``simulation_speed`` is ``float("inf")`` when the wall clock rounded the
run's duration to zero (very fast quick runs); ``as_dict()`` used to pass
it straight to the JSON writers, producing the non-standard ``Infinity``
token.  It must serialise as ``None`` instead.
"""

import json

from repro.soc import SimulationReport, SweepPoint


def make_report(wall):
    return SimulationReport(
        description="test",
        simulated_time=10_000,
        clock_period=10,
        wallclock_seconds=wall,
        kernel_stats={},
        pe_reports=[{"name": "pe0", "finished": True}],
    )


class TestSimulationSpeedClamping:
    def test_zero_wallclock_speed_is_inf_but_serialises_none(self):
        report = make_report(0.0)
        assert report.simulation_speed == float("inf")
        assert report.simulation_speed_or_none is None
        data = report.as_dict()
        assert data["simulation_speed"] is None
        # Standard JSON round trip must work (allow_nan=False would raise
        # on Infinity — this is exactly the bug being regression-tested).
        encoded = json.dumps(data, allow_nan=False)
        assert json.loads(encoded)["simulation_speed"] is None

    def test_normal_wallclock_is_untouched(self):
        report = make_report(0.5)
        assert report.simulation_speed == 2000.0
        assert report.simulation_speed_or_none == 2000.0
        assert report.as_dict()["simulation_speed"] == 2000.0

    def test_sweep_point_row_clamps_too(self):
        point = SweepPoint(label="p", parameters={}, report=make_report(0.0))
        row = point.row()
        assert row["simulation_speed"] is None
        json.dumps(row, allow_nan=False)

    def test_scenario_result_row_clamps_too(self):
        from repro.api.scenario import ScenarioResult

        result = ScenarioResult(scenario="s", params={}, overrides={})
        result.report = make_report(0.0)
        result.passed = True
        assert result.row()["simulation_speed"] is None
        json.dumps(result.row(), allow_nan=False)

    def test_as_dict_includes_cache_reports_key(self):
        assert make_report(1.0).as_dict()["cache_reports"] == []
