"""Tests for platform configuration and the reporting/statistics helpers."""

import pytest

from repro.soc import (
    ArbitrationKind,
    InterconnectKind,
    MemoryKind,
    PlatformConfig,
    SimulationReport,
    SweepPoint,
    format_table,
    speed_degradation,
    wallclock_overhead,
)


def make_report(cycles=1000, wall=0.5, period=10, finished=True):
    return SimulationReport(
        description="test",
        simulated_time=cycles * period,
        clock_period=period,
        wallclock_seconds=wall,
        kernel_stats={},
        pe_reports=[{"finished": finished, "api_calls": 7}],
        memory_reports=[],
        interconnect_stats={"transactions": 42},
    )


class TestPlatformConfig:
    def test_defaults_match_paper_platform(self):
        config = PlatformConfig()
        assert config.num_pes == 4
        assert config.num_memories == 1
        assert config.memory_kind is MemoryKind.WRAPPER
        assert config.interconnect is InterconnectKind.SHARED_BUS
        assert config.arbitration is ArbitrationKind.ROUND_ROBIN

    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformConfig(num_pes=0)
        with pytest.raises(ValueError):
            PlatformConfig(num_memories=0)
        with pytest.raises(ValueError):
            PlatformConfig(clock_period=0)
        with pytest.raises(ValueError):
            PlatformConfig(idle_tick_work=-1)

    def test_memory_base_addresses_are_disjoint_windows(self):
        config = PlatformConfig(num_memories=4)
        bases = [config.memory_base(i) for i in range(4)]
        assert len(set(bases)) == 4
        assert all(b2 - b1 >= 0x1000 for b1, b2 in zip(bases, bases[1:]))
        with pytest.raises(ValueError):
            config.memory_base(4)

    def test_describe_mentions_key_parameters(self):
        text = PlatformConfig(num_pes=2, num_memories=3).describe()
        assert "2 PE" in text and "3 x" in text


class TestSimulationReport:
    def test_speed_metric(self):
        report = make_report(cycles=2000, wall=2.0)
        assert report.simulated_cycles == 2000
        assert report.simulation_speed == pytest.approx(1000.0)

    def test_summary_and_dict(self):
        report = make_report()
        text = report.summary()
        assert "cycles/s" in text
        data = report.as_dict()
        assert data["simulated_cycles"] == 1000
        assert report.all_pes_finished
        assert report.total_api_calls() == 7
        assert report.total_transactions() == 42

    def test_unfinished_pe_detected(self):
        assert not make_report(finished=False).all_pes_finished

    def test_degradation_20_percent(self):
        fast = make_report(cycles=1000, wall=1.0)     # 1000 cycles/s
        slow = make_report(cycles=1000, wall=1.25)    # 800 cycles/s
        assert speed_degradation(fast, slow) == pytest.approx(0.20)

    def test_degradation_negative_when_faster(self):
        fast = make_report(cycles=1000, wall=1.0)
        faster = make_report(cycles=1000, wall=0.5)
        assert speed_degradation(fast, faster) < 0

    def test_wallclock_overhead(self):
        base = make_report(wall=1.0)
        heavier = make_report(wall=1.3)
        assert wallclock_overhead(base, heavier) == pytest.approx(0.3)


class TestSweepAndTable:
    def test_sweep_point_row(self):
        point = SweepPoint("4pe", {"pes": 4}, make_report())
        row = point.row()
        assert row["label"] == "4pe"
        assert row["pes"] == 4
        assert "simulation_speed" in row

    def test_format_table_alignment(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yyy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]
