"""Fabric-layer contracts shared by every interconnect topology.

Slave attachment must validate through the one shared AddressMap path (so
bad maps fail identically on bus, crossbar and mesh), the stats emission
must carry the same columns everywhere, and the removed deprecation shims
in ``repro.interconnect`` must fail with a pointer at ``repro.fabric``.
"""

import importlib

import pytest

import repro.fabric as fabric
import repro.interconnect as interconnect
from repro.fabric import (
    AddressMapConflict,
    ArbitrationSpec,
    BusOp,
    BusResponse,
    BusSlave,
    Fabric,
    percentile_summary,
)
from repro.interconnect import Crossbar, SharedBus
from repro.kernel import Module, Simulator
from repro.noc import MeshNoc, NocConfig

TOPOLOGIES = ["shared_bus", "crossbar", "mesh"]


class NullSlave(BusSlave):
    def access(self, request, offset):
        return BusResponse(data=offset)


def make_fabric(topology, top=None):
    top = top if top is not None else Module("top")
    if topology == "shared_bus":
        return SharedBus("bus", period=10, parent=top)
    if topology == "crossbar":
        return Crossbar("xbar", period=10, parent=top)
    return MeshNoc("noc", period=10, config=NocConfig(rows=2, cols=2),
                   parent=top)


@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestSharedAttachValidation:
    """Identical attach-time failures on every topology."""

    def test_overlapping_regions_rejected(self, topology):
        fab = make_fabric(topology)
        fab.attach_slave("a", 0x1000, 0x100, NullSlave())
        with pytest.raises(AddressMapConflict, match="overlaps"):
            fab.attach_slave("b", 0x1080, 0x100, NullSlave())

    def test_duplicate_name_rejected(self, topology):
        fab = make_fabric(topology)
        fab.attach_slave("a", 0x1000, 0x100, NullSlave())
        with pytest.raises(AddressMapConflict, match="already used"):
            fab.attach_slave("a", 0x8000, 0x100, NullSlave())

    def test_zero_size_region_rejected(self, topology):
        fab = make_fabric(topology)
        with pytest.raises(ValueError, match="size must be positive"):
            fab.attach_slave("a", 0x1000, 0, NullSlave())

    def test_negative_base_rejected(self, topology):
        fab = make_fabric(topology)
        with pytest.raises(ValueError, match="base must be non-negative"):
            fab.attach_slave("a", -4, 0x100, NullSlave())

    def test_failed_attach_leaves_no_transport_state(self, topology):
        fab = make_fabric(topology)
        fab.attach_slave("a", 0x1000, 0x100, NullSlave())
        with pytest.raises(AddressMapConflict):
            fab.attach_slave("b", 0x1000, 0x100, NullSlave())
        # Only the successful region is mapped, and only its transport
        # state (crossbar channel / mesh server) exists.
        assert [region.name for region in fab.address_map.regions] == ["a"]
        if topology == "crossbar":
            assert len(fab._channels) == 1
        elif topology == "mesh":
            assert len(fab._servers) == 1


@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestUniformStatsEmission:
    UNIFORM_KEYS = {"transactions", "busy_cycles", "decode_errors",
                    "per_master", "utilization", "latency_percentiles",
                    "arbitration"}

    def run_traffic(self, topology):
        top = Module("top")
        fab = make_fabric(topology, top)
        fab.attach_slave("ram", 0x0, 0x1000, NullSlave())

        class Driver(Module):
            def __init__(self, name, port, parent):
                super().__init__(name, parent)
                self.port = port
                self.add_process(self._run)

            def _run(self):
                yield from self.port.read(0x10)
                yield from self.port.write(0x20, 7)

        Driver("m0", fab.master_port(0), top)
        sim = Simulator(top)
        sim.run()
        return fab, sim

    def test_uniform_columns(self, topology):
        fab, sim = self.run_traffic(topology)
        block = fab.interconnect_stats(sim.now)
        assert self.UNIFORM_KEYS <= set(block)
        assert block["transactions"] == 2
        assert 0.0 <= block["utilization"] <= 1.0
        latency = block["latency_percentiles"]
        assert latency["count"] == 2
        assert latency["p50"] >= 1
        assert latency["max"] >= latency["p50"]
        assert block["arbitration"]["grant_counts"].get(0, 0) >= 1

    def test_topology_blocks_decorate_not_replace(self, topology):
        fab, sim = self.run_traffic(topology)
        block = fab.interconnect_stats(sim.now)
        if topology == "mesh":
            assert block["noc"]["packets"] > 0
        elif topology == "crossbar":
            assert block["channels"]["ram"]["transactions"] == 2

    def test_empty_fabric_reports_no_data_not_zero_latency(self, topology):
        fab = make_fabric(topology)
        block = fab.interconnect_stats(0)
        assert block["transactions"] == 0
        assert block["latency_percentiles"] == {
            "count": 0, "p50": None, "p95": None, "max": None,
        }


class TestEmptyPercentileSummary:
    """Regression: empty sample sets must yield an explicit no-data row."""

    def test_empty_sample_is_explicit(self):
        summary = percentile_summary([])
        assert summary["count"] == 0
        assert summary["p50"] is None
        assert summary["p95"] is None
        assert summary["max"] is None

    def test_single_sample_is_intact(self):
        assert percentile_summary([9]) == {"count": 1, "p50": 9, "p95": 9,
                                           "max": 9}


class TestFabricArbitrationWiring:
    def test_bus_accepts_legacy_arbiter_instance(self):
        top = Module("top")
        arbiter = fabric.FixedPriorityArbiter()
        bus = SharedBus("bus", period=10, arbiter=arbiter, parent=top)
        assert bus.arbiter is arbiter
        assert bus.arbitration_policies == [arbiter]

    def test_legacy_instance_reports_its_real_kind(self):
        # Regression: a ready instance used to be reported as round_robin.
        top = Module("top")
        bus = SharedBus("bus", period=10,
                        arbiter=fabric.TdmaArbiter([0, 1]), parent=top)
        block = bus.interconnect_stats(0)
        assert block["arbitration"]["kind"] == "tdma"

    def test_policy_granting_nobody_raises_instead_of_spinning(self):
        class BrokenPolicy(fabric.ArbitrationPolicy):
            def grant(self, requesters):
                return None

        top = Module("top")
        bus = SharedBus("bus", period=10, arbiter=BrokenPolicy(), parent=top)
        bus.attach_slave("ram", 0x0, 0x100, NullSlave())

        class Driver(Module):
            def __init__(self, name, port, parent):
                super().__init__(name, parent)
                self.port = port
                self.add_process(self._run)

            def _run(self):
                yield from self.port.read(0x0)

        Driver("m0", bus.master_port(0), top)
        # The kernel wraps process exceptions in ProcessError; the fabric's
        # diagnostic must survive in the message instead of a silent spin.
        from repro.kernel.errors import ProcessError

        with pytest.raises(ProcessError, match="granted nobody"):
            Simulator(top).run()

    def test_bus_rejects_both_spellings(self):
        with pytest.raises(ValueError, match="not both"):
            SharedBus("bus", period=10,
                      arbiter=fabric.RoundRobinArbiter(),
                      arbitration="round_robin", parent=Module("top"))

    def test_one_policy_instance_per_grant_point(self):
        top = Module("top")
        xbar = Crossbar("xbar", period=10,
                        arbitration=ArbitrationSpec("fixed_priority"),
                        parent=top)
        xbar.attach_slave("a", 0x0000, 0x100, NullSlave())
        xbar.attach_slave("b", 0x1000, 0x100, NullSlave())
        policies = xbar.arbitration_policies
        assert len(policies) == 2
        assert policies[0] is not policies[1]
        assert all(isinstance(p, fabric.FixedPriorityArbiter)
                   for p in policies)

    def test_merged_grant_counts_sum_over_points(self):
        top = Module("top")
        xbar = Crossbar("xbar", period=10, parent=top)
        xbar.attach_slave("a", 0x0000, 0x100, NullSlave())
        xbar.attach_slave("b", 0x1000, 0x100, NullSlave())
        a, b = xbar.arbitration_policies
        a.grant([0, 1])
        b.grant([0])
        assert xbar.merged_grant_counts() == {0: 2}


class TestShimRemoval:
    """The pre-fabric deprecation shims are gone as of 2.0."""

    def test_interconnect_exports_only_topologies_and_monitor(self):
        assert sorted(interconnect.__all__) == [
            "BusMonitor", "Crossbar", "MonitoredTransfer", "SharedBus",
        ]
        for moved in ("MasterPort", "BusSlave", "BusStats", "MasterStats",
                      "BusRequest", "AddressMap", "RoundRobinArbiter",
                      "make_arbiter"):
            assert not hasattr(interconnect, moved), (
                f"repro.interconnect still re-exports {moved}; it lives in "
                f"repro.fabric now"
            )

    @pytest.mark.parametrize("module", [
        "repro.interconnect.arbiter",
        "repro.interconnect.address_map",
        "repro.interconnect.transaction",
    ])
    def test_removed_submodules_point_at_fabric(self, module):
        with pytest.raises(ImportError, match="repro.fabric"):
            importlib.import_module(module)

    def test_topologies_are_fabric_subclasses(self):
        assert issubclass(SharedBus, Fabric)
        assert issubclass(Crossbar, Fabric)
        assert issubclass(MeshNoc, Fabric)
        # The duplicated plumbing is really gone: the shared surface is
        # inherited, not re-defined per topology.
        for cls in (SharedBus, Crossbar, MeshNoc):
            for method in ("attach_slave", "master_port", "add_snooper",
                           "interconnect_stats", "_account",
                           "_register_port"):
                assert method not in vars(cls), (
                    f"{cls.__name__} re-defines {method}; it must inherit "
                    f"it from Fabric"
                )


class TestCoherenceRequiresFabric:
    def test_non_fabric_interconnect_rejected(self):
        from repro.cache.coherence import CoherenceDomain

        class FakeBus:
            def add_snooper(self, snooper):  # pragma: no cover
                pass

        with pytest.raises(TypeError, match="repro.fabric.Fabric"):
            CoherenceDomain().attach_interconnect(FakeBus(), {})

    def test_fabric_interconnect_accepted(self):
        from repro.cache.coherence import CoherenceDomain

        top = Module("top")
        bus = SharedBus("bus", period=10, parent=top)
        domain = CoherenceDomain()
        domain.attach_interconnect(bus, {0x1000_0000: 0})
        assert len(bus._snoopers) == 1


class TestRequestHelpers:
    def test_master_port_requires_unique_ids(self):
        top = Module("top")
        bus = SharedBus("bus", period=10, parent=top)
        bus.master_port(0)
        with pytest.raises(ValueError, match="registered twice"):
            bus.master_port(0)

    def test_read_write_round_trip_on_mesh(self):
        top = Module("top")
        noc = make_fabric("mesh", top)
        written = {}

        class Probe(NullSlave):
            def access(self, request, offset):
                if request.op is BusOp.WRITE:
                    written[offset] = request.data
                    return BusResponse()
                return BusResponse(data=written.get(offset, 0))

        noc.attach_slave("ram", 0x0, 0x1000, Probe())

        class Driver(Module):
            def __init__(self, name, port, parent):
                super().__init__(name, parent)
                self.port = port
                self.value = None
                self.add_process(self._run)

            def _run(self):
                yield from self.port.write(0x40, 1234)
                response = yield from self.port.read(0x40)
                self.value = response.data

        driver = Driver("m0", noc.master_port(0), top)
        Simulator(top).run()
        assert driver.value == 1234
