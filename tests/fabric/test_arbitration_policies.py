"""Parametrized arbitration-policy suite across all three topologies.

Policies are verified at three levels:

* pure policy objects — exact grant sequences for static requester sets;
* fabric level — every grant decision a running bus/crossbar/mesh makes is
  recorded (requesters, winner) and checked against the policy's exact
  semantics: lowest/priority-ranked wins for fixed priority, slot owner
  for TDMA, rotation for round-robin, budgeted rotation for weighted RR —
  plus starvation-freedom for the rotating policies;
* platform level — ``PlatformBuilder.arbitration(...)`` selects the policy
  on every topology and the workload still produces correct results.
"""

import pytest

from repro.api import ExperimentRunner, PlatformBuilder, Scenario
from repro.fabric import (
    ArbitrationPolicy,
    ArbitrationSpec,
    BusOp,
    BusResponse,
    BusSlave,
    FixedPriorityArbiter,
    ResponseStatus,
    RoundRobinArbiter,
    TdmaArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.interconnect import Crossbar, SharedBus
from repro.kernel import Module, Simulator
from repro.noc import MeshNoc, NocConfig

TOPOLOGIES = ["shared_bus", "crossbar", "mesh"]


# -- test fixtures -----------------------------------------------------------------
class ScratchSlave(BusSlave):
    """A tiny word-addressable RAM with configurable access latency."""

    def __init__(self, words=256, cycles=1):
        self.storage = [0] * words
        self.cycles = cycles

    def latency(self, request):
        return self.cycles

    def access(self, request, offset):
        index = offset // 4
        if request.op is BusOp.WRITE:
            self.storage[index] = request.data
            return BusResponse()
        return BusResponse(data=self.storage[index])


class MasterHarness(Module):
    """Issues ``count`` back-to-back scalar reads and records completions."""

    def __init__(self, name, port, count, parent=None):
        super().__init__(name, parent)
        self.port = port
        self.count = count
        self.responses = []
        self.add_process(self._run, name="driver")

    def _run(self):
        for i in range(self.count):
            response = yield from self.port.read(4 * i)
            self.responses.append(response)


class RecordingPolicy(ArbitrationPolicy):
    """Delegating wrapper logging every (requesters, winner) decision."""

    def __init__(self, inner, log):
        self.inner = inner
        self.log = log

    @property
    def grant_counts(self):
        return getattr(self.inner, "grant_counts", {})

    def grant(self, requesters):
        winner = self.inner.grant(requesters)
        if winner is not None:
            self.log.append((tuple(requesters), winner))
        return winner

    def reset(self):
        self.inner.reset()


def build_fabric(topology, arbitration, top, slave, instrument_log=None):
    """One fabric of ``topology`` with a single slave at [0, 0x1000)."""
    if topology == "shared_bus":
        fabric = SharedBus("bus", period=10, arbitration=arbitration,
                           parent=top)
    elif topology == "crossbar":
        fabric = Crossbar("xbar", period=10, arbitration=arbitration,
                          parent=top)
    else:
        fabric = MeshNoc("noc", period=10,
                         config=NocConfig(rows=2, cols=2),
                         arbitration=arbitration, parent=top)
    if instrument_log is not None:
        if topology == "shared_bus":
            fabric.arbiter = RecordingPolicy(fabric.arbiter, instrument_log)
        else:
            original = fabric.new_policy
            fabric.new_policy = (
                lambda: RecordingPolicy(original(), instrument_log))
    fabric.attach_slave("ram", 0x0, 0x1000, slave)
    return fabric


def run_contended(topology, arbitration, masters=3, requests=6,
                  slave_cycles=6):
    """``masters`` PEs hammering one slow slave; returns the grant log,
    the per-master completion order and the fabric."""
    top = Module("top")
    log = []
    slave = ScratchSlave(cycles=slave_cycles)
    fabric = build_fabric(topology, arbitration, top, slave,
                          instrument_log=log)
    completions = []
    fabric.add_snooper(
        lambda request, response: completions.append(request.master_id))
    harnesses = [
        MasterHarness(f"m{i}", fabric.master_port(i), requests, parent=top)
        for i in range(masters)
    ]
    sim = Simulator(top)
    sim.run()
    for harness in harnesses:
        assert len(harness.responses) == requests
        assert all(r.status is ResponseStatus.OK for r in harness.responses)
    return log, completions, fabric


def assert_contention(log):
    assert any(len(requesters) > 1 for requesters, _ in log), \
        "the scenario never contended; the policy was not exercised"


# -- pure policy objects ------------------------------------------------------------
class TestWeightedRoundRobinUnit:
    def test_budgeted_rotation_sequence(self):
        arb = WeightedRoundRobinArbiter(weights=(3, 1, 2))
        grants = [arb.grant([0, 1, 2]) for _ in range(12)]
        assert grants == [0, 0, 0, 1, 2, 2, 0, 0, 0, 1, 2, 2]

    def test_unlisted_master_gets_default_weight(self):
        arb = WeightedRoundRobinArbiter(weights={0: 2})
        assert arb.weight_of(0) == 2
        assert arb.weight_of(7) == 1
        grants = [arb.grant([0, 7]) for _ in range(6)]
        assert grants == [0, 0, 7, 0, 0, 7]

    def test_idle_owner_forfeits_budget(self):
        arb = WeightedRoundRobinArbiter(weights=(4, 1))
        assert arb.grant([0, 1]) == 0
        # Master 0 goes idle mid-budget; on return it gets a fresh budget
        # only after the rotation came around.
        assert arb.grant([1]) == 1
        assert arb.grant([0, 1]) == 0

    def test_starvation_freedom_under_extreme_weights(self):
        arb = WeightedRoundRobinArbiter(weights=(100, 1))
        grants = [arb.grant([0, 1]) for _ in range(101)]
        assert 1 in grants

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter(weights=(0,))
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter(weights={2: -1})
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter(default_weight=0)

    def test_reset_clears_rotation_and_counts(self):
        arb = WeightedRoundRobinArbiter(weights=(2, 1))
        for _ in range(3):
            arb.grant([0, 1])
        arb.reset()
        assert arb.grant_counts == {}
        assert arb.grant([0, 1]) == 0


class TestArbitrationSpec:
    def test_coerce_and_aliases(self):
        assert ArbitrationSpec.coerce(None).kind == "round_robin"
        assert ArbitrationSpec.coerce("priority").kind == "fixed_priority"
        assert ArbitrationSpec.coerce("wrr").kind == "weighted_round_robin"
        spec = ArbitrationSpec(kind="tdma", schedule=[1, 0])
        assert ArbitrationSpec.coerce(spec) is spec
        assert spec.schedule == (1, 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arbitration policy"):
            ArbitrationSpec(kind="lottery")
        with pytest.raises(TypeError):
            ArbitrationSpec.coerce(42)

    def test_create_maps_kinds_to_policies(self):
        assert isinstance(ArbitrationSpec("round_robin").create(),
                          RoundRobinArbiter)
        assert isinstance(ArbitrationSpec("fixed_priority").create(),
                          FixedPriorityArbiter)
        assert isinstance(
            ArbitrationSpec("weighted_round_robin", weights=(2, 1)).create(),
            WeightedRoundRobinArbiter)
        assert isinstance(ArbitrationSpec("tdma", schedule=(0, 1)).create(),
                          TdmaArbiter)

    def test_tdma_without_schedule_rejected_at_create(self):
        with pytest.raises(ValueError, match="schedule"):
            ArbitrationSpec("tdma").create()

    def test_make_arbiter_accepts_aliases_and_extra_kwargs(self):
        arb = make_arbiter("weighted", weights=(2, 1), schedule=(0,))
        assert isinstance(arb, WeightedRoundRobinArbiter)
        with pytest.raises(ValueError):
            make_arbiter("nope")


# -- fabric level -------------------------------------------------------------------
@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestPolicySemanticsOnFabric:
    def test_fixed_priority_exact_grant_order(self, topology):
        log, _completions, _fabric = run_contended(
            topology, ArbitrationSpec("fixed_priority"))
        assert_contention(log)
        for requesters, winner in log:
            assert winner == min(requesters)

    def test_fixed_priority_explicit_order(self, topology):
        order = (2, 0, 1)
        log, _completions, _fabric = run_contended(
            topology, ArbitrationSpec("fixed_priority",
                                      priority_order=order))
        assert_contention(log)
        for requesters, winner in log:
            ranked = [m for m in order if m in requesters]
            assert winner == (ranked[0] if ranked else min(requesters))

    def test_tdma_exact_slot_order(self, topology):
        schedule = (1, 2, 0)
        log, _completions, _fabric = run_contended(
            topology, ArbitrationSpec("tdma", schedule=schedule))
        assert_contention(log)
        fallback = RoundRobinArbiter()
        for slot, (requesters, winner) in enumerate(log):
            owner = schedule[slot % len(schedule)]
            if owner in requesters:
                assert winner == owner
            else:
                # Work-conserving fallback: round-robin over the requesters
                # (the real policy advances its fallback only on misses).
                assert winner == fallback.grant(requesters)

    def test_round_robin_rotation_and_starvation_freedom(self, topology):
        log, completions, fabric = run_contended(
            topology, ArbitrationSpec("round_robin"))
        assert_contention(log)
        last = None
        for requesters, winner in log:
            ordered = sorted(requesters)
            if last is None:
                expected = ordered[0]
            else:
                after = [m for m in ordered if m > last]
                expected = after[0] if after else ordered[0]
            assert winner == expected
            last = winner
        # Starvation-freedom: every master got exactly its share through.
        for master in range(3):
            assert fabric.stats.master(master).transactions == 6
        assert completions.count(0) == completions.count(1) \
            == completions.count(2) == 6

    def test_weighted_budgets_and_starvation_freedom(self, topology):
        weights = (3, 1, 1)
        log, _completions, fabric = run_contended(
            topology, ArbitrationSpec("weighted_round_robin",
                                      weights=weights), requests=8)
        assert_contention(log)
        # No master ever exceeds its budget while someone else is waiting.
        streak_owner, streak = None, 0
        for requesters, winner in log:
            if winner == streak_owner:
                streak += 1
            else:
                streak_owner, streak = winner, 1
            if len(requesters) > 1:
                assert streak <= weights[winner], (
                    f"master {winner} held the grant {streak} times with "
                    f"rivals waiting (budget {weights[winner]})"
                )
        # Starvation-freedom: everyone finished all transfers.
        for master in range(3):
            assert fabric.stats.master(master).transactions == 8

    def test_grant_counts_surface_in_interconnect_stats(self, topology):
        _log, _completions, fabric = run_contended(
            topology, ArbitrationSpec("fixed_priority"))
        block = fabric.interconnect_stats(0)
        assert block["arbitration"]["kind"] == "fixed_priority"
        assert block["arbitration"]["grant_counts"] == {0: 6, 1: 6, 2: 6}


# -- exact completion order on the serialized topologies ----------------------------
@pytest.mark.parametrize("topology", ["shared_bus", "crossbar"])
class TestOneShotCompletionOrder:
    """All masters post exactly once at t=0; the single channel then drains
    the static requester set in exact policy order."""

    def run_one_shot(self, topology, arbitration):
        top = Module("top")
        slave = ScratchSlave(cycles=3)
        fabric = build_fabric(topology, arbitration, top, slave)
        order = []
        fabric.add_snooper(
            lambda request, response: order.append(request.master_id))
        for master in range(3):
            MasterHarness(f"m{master}", fabric.master_port(master), 1,
                          parent=top)
        Simulator(top).run()
        return order

    def test_priority_order(self, topology):
        spec = ArbitrationSpec("fixed_priority", priority_order=(2, 0, 1))
        assert self.run_one_shot(topology, spec) == [2, 0, 1]

    def test_tdma_schedule_order(self, topology):
        spec = ArbitrationSpec("tdma", schedule=(1, 2, 0))
        assert self.run_one_shot(topology, spec) == [1, 2, 0]

    def test_round_robin_id_order(self, topology):
        assert self.run_one_shot(topology, "round_robin") == [0, 1, 2]


# -- platform level -----------------------------------------------------------------
POLICY_BUILDS = {
    "round_robin": {},
    "fixed_priority": {},
    "weighted_round_robin": {"weights": (4, 2, 1)},
    "tdma": {"schedule": (0, 1, 2)},
}


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("policy", sorted(POLICY_BUILDS))
def test_policies_selectable_on_every_topology(topology, policy):
    builder = (PlatformBuilder().pes(3).wrapper_memories(2)
               .arbitration(policy, **POLICY_BUILDS[policy]))
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh(rows=2, cols=2)
    scenario = Scenario(name=f"{topology}-{policy}", config=builder.build(),
                        workload="fir", params={"num_samples": 12, "seed": 2},
                        seed=2)
    [result] = ExperimentRunner([scenario]).run()
    result.raise_for_status()
    arbitration = result.report.interconnect_stats["arbitration"]
    assert arbitration["kind"] == policy
    # Every master was granted (none starved, whatever the policy).
    assert set(arbitration["grant_counts"]) == {0, 1, 2}
    assert all(count > 0 for count in arbitration["grant_counts"].values())
