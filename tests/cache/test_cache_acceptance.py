"""Acceptance tests of the cache layer against the ISSUE criteria:

* caches off => the platform is the bit-identical flat model (covered by
  ``tests/perf`` golden counters; re-checked here via the report shape);
* caches on => ``gsm_encode`` (4 PEs — shared bus, crossbar and mesh)
  produces bit-identical encoder output versus cache-off while the
  per-memory BusMonitor probes observe *strictly fewer* shared-memory
  transactions;
* the ``producer_consumer`` ordering workload stays correct under MSI.
"""

import pytest

from repro.api import ExperimentRunner, PlatformBuilder, Scenario


def apply_topology(builder, topology):
    if topology == "crossbar":
        return builder.crossbar()
    if topology == "mesh":
        return builder.mesh(rows=2, cols=2)
    return builder


def gsm_scenario(policy=None, topology="shared_bus", pes=4):
    builder = PlatformBuilder().pes(pes).wrapper_memories(1).monitored()
    builder = apply_topology(builder, topology)
    if policy is not None:
        builder = builder.l1_cache(policy=policy)
    return Scenario(
        name="gsm-acceptance",
        config=builder.build(),
        workload="gsm_encode",
        params={"frames": 1, "seed": 42},
        seed=42,
    )


def run(scenario):
    result = ExperimentRunner([scenario]).run()[0]
    result.raise_for_status()
    return result.report


@pytest.mark.parametrize("topology", ["shared_bus", "crossbar", "mesh"])
@pytest.mark.parametrize("policy", ["write_back", "write_through"])
def test_gsm_bit_exact_with_fewer_memory_transactions(policy, topology):
    flat = run(gsm_scenario(None, topology))
    cached = run(gsm_scenario(policy, topology))
    # Bit-identical encoder output: the caches may only change *where*
    # data lives, never what the software computes.
    assert cached.results == flat.results
    # Strictly fewer shared-memory transactions with the L1 layer on.
    flat_txns = flat.interconnect_stats["memory_transactions"]
    cached_txns = cached.interconnect_stats["memory_transactions"]
    assert cached_txns < flat_txns
    assert cached.cache_hit_rate() > 0.5
    assert len(cached.cache_reports) == 4


def test_write_back_beats_write_through_on_gsm():
    write_through = run(gsm_scenario("write_through"))
    write_back = run(gsm_scenario("write_back"))
    assert (write_back.interconnect_stats["memory_transactions"]
            <= write_through.interconnect_stats["memory_transactions"])


@pytest.mark.parametrize("topology", ["shared_bus", "crossbar", "mesh"])
@pytest.mark.parametrize("policy", ["write_back", "write_through"])
def test_producer_consumer_ordering_under_caches(policy, topology):
    def scenario(with_policy):
        builder = PlatformBuilder().pes(2).wrapper_memories(1)
        builder = apply_topology(builder, topology)
        if with_policy is not None:
            builder = builder.l1_cache(sets=4, ways=2, line_bytes=16,
                                       policy=with_policy)
        return Scenario(
            name="pc-acceptance", config=builder.build(),
            workload="producer_consumer",
            params={"num_items": 24, "fifo_depth": 4, "seed": 3}, seed=3,
        )

    flat = run(scenario(None))
    cached = run(scenario(policy))
    assert cached.results == flat.results
    assert cached.all_pes_finished


def test_caches_off_report_shape_is_unchanged():
    report = run(gsm_scenario(None))
    assert report.cache_reports == []
    assert "coherence" not in report.interconnect_stats
