"""MSI snooping coherence suite: invalidate-on-remote-write,
writeback-on-remote-read, false sharing, reservation interplay and
allocation lifetime scrubbing — on all three interconnect topologies."""

import pytest

from repro.api import PlatformBuilder
from repro.memory import DataType
from repro.soc import Platform


def run_pair(task0, task1, policy="write_back", topology="shared_bus",
             sets=8, ways=2, line_bytes=16):
    builder = (PlatformBuilder().pes(2).wrapper_memories(1).monitored()
               .l1_cache(sets=sets, ways=ways, line_bytes=line_bytes,
                         policy=policy))
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh(rows=2, cols=2)
    platform = Platform(builder.build())
    platform.add_task(task0)
    platform.add_task(task1)
    return platform, platform.run()


def wait_for(shared, key, ctx):
    while key not in shared:
        yield 16 * ctx.clock_period


@pytest.mark.parametrize("topology", ["shared_bus", "crossbar", "mesh"])
@pytest.mark.parametrize("policy", ["write_back", "write_through"])
class TestMSIProtocol:
    def test_invalidate_on_remote_write(self, policy, topology):
        """A cached SHARED copy must not survive a remote write."""
        shared = {}

        def writer(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            shared["vptr"] = vptr
            yield from wait_for(shared, "cached", ctx)
            yield from smem.write(vptr, 42, offset=0)
            shared["written"] = True
            return True

        def reader(ctx):
            smem = ctx.smem(0)
            yield from wait_for(shared, "vptr", ctx)
            vptr = shared["vptr"]
            before = yield from smem.read(vptr, offset=0)  # caches the line
            shared["cached"] = True
            yield from wait_for(shared, "written", ctx)
            after = yield from smem.read(vptr, offset=0)
            return before, after

        platform, report = run_pair(writer, reader, policy=policy,
                                    topology=topology)
        before, after = report.results["pe1"]
        assert (before, after) == (0, 42)
        assert platform.caches[1].stats.invalidations_received >= 1

    def test_writeback_on_remote_read_of_dirty_line(self, policy, topology):
        """A remote read must observe another PE's (possibly dirty) write."""
        shared = {}

        def writer(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.write(vptr, 7, offset=1)   # dirty under WB
            shared["vptr"] = vptr
            yield from wait_for(shared, "done", ctx)
            return True

        def reader(ctx):
            smem = ctx.smem(0)
            yield from wait_for(shared, "vptr", ctx)
            value = yield from smem.read(shared["vptr"], offset=1)
            shared["done"] = True
            return value

        platform, report = run_pair(writer, reader, policy=policy,
                                    topology=topology)
        assert report.results["pe1"] == 7
        if policy == "write_back":
            # The value crossed the memory via a snoop-triggered writeback.
            assert (platform.caches[0].stats.writebacks
                    + platform.coherence.stats.snoop_writebacks) >= 1

    def test_false_sharing_race(self, policy, topology):
        """Two PEs ping-pong writes to different elements of one line."""
        shared = {}

        def even_writer(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)  # one 16B line
            shared["vptr"] = vptr
            for round_index in range(8):
                yield from smem.write(vptr, 100 + round_index, offset=0)
                yield from smem.write(vptr, 200 + round_index, offset=2)
                yield ctx.clock_period
            shared["even_done"] = True
            yield from wait_for(shared, "odd_done", ctx)
            values = yield from smem.read_array(vptr, 4)
            return values

        def odd_writer(ctx):
            smem = ctx.smem(0)
            yield from wait_for(shared, "vptr", ctx)
            vptr = shared["vptr"]
            for round_index in range(8):
                yield from smem.write(vptr, 300 + round_index, offset=1)
                yield from smem.write(vptr, 400 + round_index, offset=3)
                yield ctx.clock_period
            yield from wait_for(shared, "even_done", ctx)
            shared["odd_done"] = True
            return True

        platform, report = run_pair(even_writer, odd_writer, policy=policy,
                                    topology=topology)
        # No update may be lost despite the line bouncing between owners.
        assert report.results["pe0"] == [107, 307, 207, 407]

    def test_remote_read_array_sees_dirty_data(self, policy, topology):
        shared = {}

        def writer(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(8, DataType.UINT32)
            yield from smem.write_array(vptr, [i * 3 for i in range(8)])
            shared["vptr"] = vptr
            yield from wait_for(shared, "done", ctx)
            return True

        def reader(ctx):
            smem = ctx.smem(0)
            yield from wait_for(shared, "vptr", ctx)
            values = yield from smem.read_array(shared["vptr"], 8)
            shared["done"] = True
            return values

        _platform, report = run_pair(writer, reader, policy=policy,
                                     topology=topology)
        assert report.results["pe1"] == [i * 3 for i in range(8)]


class TestAllocationLifetime:
    def test_free_and_realloc_never_serves_stale_data(self):
        """Vptr ranges are reused after frees; calloc zeroing must win."""

        def task(ctx):
            smem = ctx.smem(0)
            first = yield from smem.alloc(8, DataType.UINT32)
            yield from smem.write_array(first, [9] * 8)
            warm = yield from smem.read(first, offset=3)   # line cached
            yield from smem.free(first)
            second = yield from smem.alloc(8, DataType.UINT32)
            fresh = yield from smem.read(second, offset=3)
            return first, second, warm, fresh

        builder = (PlatformBuilder().pes(1).wrapper_memories(1)
                   .l1_cache(sets=8, ways=2, line_bytes=16))
        platform = Platform(builder.build())
        platform.add_task(task)
        report = platform.run()
        first, second, warm, fresh = report.results["pe0"]
        assert first == second          # the vptr range was indeed reused
        assert warm == 9
        assert fresh == 0               # stale line must not leak through

    def test_free_drops_lines_in_every_cache(self):
        shared = {}

        def owner(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.write_array(vptr, [5, 6, 7, 8])
            shared["vptr"] = vptr
            yield from wait_for(shared, "cached", ctx)
            yield from smem.free(vptr)
            shared["freed"] = True
            return True

        def observer(ctx):
            smem = ctx.smem(0)
            yield from wait_for(shared, "vptr", ctx)
            value = yield from smem.read(shared["vptr"], offset=0)
            shared["cached"] = True
            yield from wait_for(shared, "freed", ctx)
            return value

        platform, report = run_pair(owner, observer)
        assert report.results["pe1"] == 5
        # After the FREE, no cache may retain lines of the dead allocation.
        for cache in platform.caches:
            assert cache.resident_lines() == 0


class TestUncachedMasters:
    def test_raw_master_write_supersedes_cached_dirty_data(self):
        """A write from a master with no cache serializes *after* a cached
        dirty write; the dirty copy must not be written back over it."""
        from repro.kernel import Module
        from repro.memory.protocol import MemCommand, MemOpcode, REG_COMMAND

        builder = (PlatformBuilder().pes(1).wrapper_memories(1)
                   .l1_cache(sets=8, ways=2, line_bytes=16,
                             policy="write_back"))
        platform = Platform(builder.build())
        shared = {}

        def cached_task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.write(vptr, 111, offset=0)   # dirty in L1
            shared["vptr"] = vptr
            while "raw_done" not in shared:
                yield 16 * ctx.clock_period
            value = yield from smem.read(vptr, offset=0)
            yield from smem.free(vptr)
            return value

        platform.add_task(cached_task)
        port = platform.interconnect.master_port(99, name="raw")
        base = platform.config.memory_base(0)

        class RawMaster(Module):
            def __init__(self, parent):
                super().__init__("raw", parent)
                self.add_process(self._run)

            def _run(self):
                while "vptr" not in shared:
                    yield 160
                command = MemCommand(MemOpcode.WRITE, sm_addr=0,
                                     vptr=shared["vptr"], offset=0, data=222)
                yield from port.burst_write(base + REG_COMMAND,
                                            command.to_words())
                shared["raw_done"] = True

        RawMaster(platform.top)
        report = platform.run()
        # The raw write (222) is the last one on the bus: the earlier
        # cached 111 may not resurface via a later writeback.
        assert report.results["pe0"] == 222

    def test_lifetime_drops_do_not_count_as_invalidations(self):
        """ALLOC/FREE bookkeeping drops are not coherence invalidations."""

        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(8, DataType.UINT32)
            yield from smem.write_array(vptr, list(range(8)))
            yield from smem.free(vptr)
            return True

        builder = (PlatformBuilder().pes(1).wrapper_memories(1)
                   .l1_cache(sets=8, ways=2, line_bytes=16))
        platform = Platform(builder.build())
        platform.add_task(task)
        platform.run()
        assert platform.caches[0].stats.invalidations_received == 0


class TestReservationSemantics:
    def test_reserve_acts_as_flush_barrier(self):
        """Dirty data must reach memory when another PE takes the semaphore."""
        shared = {}

        def writer(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.write(vptr, 77, offset=0)     # dirty (WB)
            shared["vptr"] = vptr
            yield from wait_for(shared, "done", ctx)
            return True

        def locker(ctx):
            smem = ctx.smem(0)
            yield from wait_for(shared, "vptr", ctx)
            vptr = shared["vptr"]
            while not (yield from smem.try_reserve(vptr)):
                yield 16 * ctx.clock_period
            value = yield from smem.read(vptr, offset=0)
            yield from smem.release(vptr)
            shared["done"] = True
            return value

        platform, report = run_pair(writer, locker)
        assert report.results["pe1"] == 77
        assert platform.coherence.stats.flush_barriers >= 1

    def test_write_stalls_behind_foreign_reservation(self):
        """A write during a foreign critical section serializes behind it
        instead of surfacing the wrapper's ERR_RESERVED."""
        shared = {}

        def locker(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            ok = yield from smem.try_reserve(vptr)
            assert ok
            shared["vptr"] = vptr
            yield from wait_for(shared, "waiting", ctx)
            yield 256 * ctx.clock_period        # hold the semaphore a while
            yield from smem.write(vptr, 1, offset=1)
            yield from smem.release(vptr)
            yield from wait_for(shared, "done", ctx)
            return True

        def writer(ctx):
            smem = ctx.smem(0)
            yield from wait_for(shared, "vptr", ctx)
            shared["waiting"] = True
            yield from smem.write(shared["vptr"], 99, offset=0)
            value = yield from smem.read(shared["vptr"], offset=0)
            shared["done"] = True
            return value

        platform, report = run_pair(locker, writer)
        assert report.results["pe1"] == 99
        assert platform.caches[1].stats.reservation_stalls >= 1
