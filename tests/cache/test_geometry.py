"""Unit tests for cache geometry/config validation and builder wiring."""

import pytest

from repro.api import BuilderError, PlatformBuilder
from repro.cache import CacheConfig, CacheError, CacheGeometry, WritePolicy
from repro.soc import PlatformConfig


class TestCacheGeometry:
    def test_defaults(self):
        geometry = CacheGeometry()
        assert geometry.sets == 64
        assert geometry.ways == 2
        assert geometry.line_bytes == 32
        assert geometry.capacity_bytes == 64 * 2 * 32
        assert geometry.describe() == "64x2x32B"

    @pytest.mark.parametrize("kwargs", [
        {"sets": 0}, {"sets": -1}, {"ways": 0},
        {"line_bytes": 0}, {"line_bytes": 3}, {"line_bytes": 24},
        {"line_bytes": 2},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(CacheError):
            CacheGeometry(**kwargs)

    def test_address_arithmetic(self):
        geometry = CacheGeometry(sets=4, ways=1, line_bytes=16)
        assert geometry.line_number(0) == 0
        assert geometry.line_number(15) == 0
        assert geometry.line_number(16) == 1
        assert geometry.line_base(3) == 48
        # Modulo placement wraps around the sets.
        assert geometry.set_index(5) == 1

    def test_config_validation(self):
        with pytest.raises(CacheError):
            CacheConfig(geometry="not a geometry")
        with pytest.raises(CacheError):
            CacheConfig(policy="write_back")  # must be the enum
        with pytest.raises(CacheError):
            CacheConfig(hit_cycles=-1)
        config = CacheConfig()
        assert config.policy is WritePolicy.WRITE_BACK
        assert "write_back" in config.describe()

    def test_config_is_hashable_for_grids(self):
        assert hash(CacheConfig()) == hash(CacheConfig())


class TestBuilderCacheMethods:
    def test_l1_cache_stages_config(self):
        config = (PlatformBuilder().pes(2)
                  .l1_cache(sets=8, ways=4, line_bytes=64,
                            policy="write_through", hit_cycles=2)
                  .build())
        assert config.cache is not None
        assert config.cache.geometry == CacheGeometry(8, 4, 64)
        assert config.cache.policy is WritePolicy.WRITE_THROUGH
        assert config.cache.hit_cycles == 2
        assert "l1 8x4x64B write_through" in config.describe()

    def test_no_cache_resets(self):
        config = PlatformBuilder().l1_cache().no_cache().build()
        assert config.cache is None

    def test_default_is_uncached(self):
        config = PlatformBuilder().build()
        assert config.cache is None
        assert config.monitor_memories is False
        assert "l1" not in config.describe()

    def test_unknown_policy_rejected(self):
        with pytest.raises(BuilderError, match="write policy"):
            PlatformBuilder().l1_cache(policy="write_around")

    def test_bad_geometry_rejected(self):
        with pytest.raises(BuilderError, match="cache description"):
            PlatformBuilder().l1_cache(line_bytes=12)

    def test_monitored_flag(self):
        assert PlatformBuilder().monitored().build().monitor_memories is True
        assert (PlatformBuilder().monitored().monitored(False).build()
                .monitor_memories is False)

    def test_platform_config_rejects_bad_cache(self):
        with pytest.raises(ValueError, match="CacheConfig"):
            PlatformConfig(cache="yes please")
