"""Behavioural unit tests of one PE's L1 cache (hits, fills, evictions,
canonical storage, array absorption, reporting)."""


from repro.api import PlatformBuilder
from repro.memory import DataType
from repro.soc import Platform


def build_platform(tasks, policy="write_back", sets=8, ways=2, line_bytes=16,
                   pes=1, crossbar=False, cache=True):
    builder = (PlatformBuilder().pes(pes).wrapper_memories(1).monitored())
    if crossbar:
        builder = builder.crossbar()
    if cache:
        builder = builder.l1_cache(sets=sets, ways=ways,
                                   line_bytes=line_bytes, policy=policy)
    platform = Platform(builder.build())
    for task in tasks:
        platform.add_task(task)
    return platform, platform.run()


class TestScalarCaching:
    def test_repeated_reads_hit(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(8, DataType.UINT32)  # calloc zeros
            total = 0
            for _ in range(4):
                for offset in range(8):
                    total += (yield from smem.read(vptr, offset=offset))
            yield from smem.free(vptr)
            return total

        platform, report = build_platform([task])
        assert report.results["pe0"] == 0
        cache = platform.caches[0]
        # 8 elements over 16-byte lines = 2 line fills on the cold pass;
        # the other 30 reads hit.
        assert cache.stats.misses == 2
        assert cache.stats.fills == 2
        assert cache.stats.hits == 30
        assert cache.stats.hit_rate > 0.9

    def test_absorbed_write_array_pre_warms_scalar_reads(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(8, DataType.UINT32)
            yield from smem.write_array(vptr, list(range(8)))
            total = 0
            for offset in range(8):
                total += (yield from smem.read(vptr, offset=offset))
            return total

        platform, report = build_platform([task])
        assert report.results["pe0"] == sum(range(8))
        cache = platform.caches[0]
        # The absorbed array write installed the lines MODIFIED: every
        # scalar read hits without a single fill.
        assert cache.stats.array_absorbs == 1
        assert cache.stats.misses == 0
        assert cache.stats.hits == 8

    def test_cached_read_after_cached_write(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.write(vptr, 123, offset=2)
            value = yield from smem.read(vptr, offset=2)
            return value

        platform, report = build_platform([task])
        assert report.results["pe0"] == 123
        cache = platform.caches[0]
        assert cache.stats.hits >= 1

    def test_write_back_defers_memory_writes(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            for offset in range(4):
                yield from smem.write(vptr, offset + 1, offset=offset)
            return True

        platform, report = build_platform([task])
        wrapper = platform.memories[0]
        from repro.memory.protocol import MemOpcode
        # The four scalar writes were absorbed: only the line fill for the
        # write-allocate reached the wrapper.
        assert wrapper.op_counts.get(MemOpcode.WRITE, 0) == 0

    def test_write_through_forwards_every_write(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            for offset in range(4):
                yield from smem.write(vptr, offset + 1, offset=offset)
            return True

        platform, report = build_platform([task], policy="write_through")
        from repro.memory.protocol import MemOpcode
        assert platform.memories[0].op_counts.get(MemOpcode.WRITE, 0) == 4
        assert platform.caches[0].stats.write_throughs == 4

    def test_canonical_sign_extension_matches_wrapper(self):
        """Cached INT16 reads must be bit-identical with wrapper reads."""

        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.INT16)
            yield from smem.write(vptr, 0x8000, offset=1)
            first = yield from smem.read(vptr, offset=1)   # cached (M line)
            second = yield from smem.read(vptr, offset=1)  # cache hit
            return first, second

        _platform, cached = build_platform([task])
        _none, flat = build_platform([task], cache=False)
        assert cached.results["pe0"] == flat.results["pe0"]
        # The wrapper sign-extends INT16 on its way out: 0x8000 -> 0xFFFF8000.
        assert cached.results["pe0"] == (0xFFFF8000, 0xFFFF8000)


class TestEvictions:
    def test_lru_eviction_and_dirty_writeback(self):
        def task(ctx):
            smem = ctx.smem(0)
            # Working set of 8 lines in a 2-line cache.
            vptr = yield from smem.alloc(32, DataType.UINT32)
            for offset in range(32):
                yield from smem.write(vptr, offset, offset=offset)
            values = []
            for offset in range(32):
                values.append((yield from smem.read(vptr, offset=offset)))
            return values

        platform, report = build_platform([task], sets=2, ways=1)
        assert report.results["pe0"] == list(range(32))
        cache = platform.caches[0]
        assert cache.stats.evictions > 0
        assert cache.stats.writebacks > 0

    def test_resident_lines_bounded_by_geometry(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(64, DataType.UINT32)
            for offset in range(64):
                yield from smem.read(vptr, offset=offset)
            return True

        platform, _report = build_platform([task], sets=2, ways=2)
        assert platform.caches[0].resident_lines() <= 4


class TestArrayTransfers:
    def test_write_back_absorbs_array_round_trip(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(16, DataType.UINT32)
            yield from smem.write_array(vptr, list(range(16)))
            values = yield from smem.read_array(vptr, 16)
            yield from smem.free(vptr)
            return values

        platform, report = build_platform([task])
        assert report.results["pe0"] == list(range(16))
        cache = platform.caches[0]
        assert cache.stats.array_absorbs == 1
        assert cache.stats.array_hits == 1
        # Only alloc + free reached the memory.
        monitor = platform.monitors[0]
        assert monitor.transaction_count == 2

    def test_read_array_installs_then_hits(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(8, DataType.UINT32)
            first = yield from smem.read_array(vptr, 8)    # miss, installs
            second = yield from smem.read_array(vptr, 8)   # served locally
            return first, second

        platform, report = build_platform([task], policy="write_through")
        first, second = report.results["pe0"]
        assert first == second == [0] * 8
        assert platform.caches[0].stats.array_misses == 1
        assert platform.caches[0].stats.array_hits == 1


class TestReporting:
    def test_cache_reports_flow_into_simulation_report(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.read(vptr)
            return True

        platform, report = build_platform([task])
        assert len(report.cache_reports) == 1
        entry = report.cache_reports[0]
        assert entry["name"] == "pe0.l1"
        assert entry["geometry"] == "8x2x16B"
        assert entry["policy"] == "write_back"
        assert "hit_rate" in entry
        assert "L1 caches" in report.summary()
        assert report.as_dict()["cache_reports"] == report.cache_reports

    def test_uncached_platform_reports_no_caches(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.read(vptr)
            return True

        platform, report = build_platform([task], cache=False)
        assert platform.caches == []
        assert report.cache_reports == []
        assert "L1 caches" not in report.summary()
        assert report.cache_hit_rate() == 0.0

    def test_coherence_stats_surface_in_interconnect_stats(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.read(vptr)
            return True

        _platform, report = build_platform([task])
        assert "coherence" in report.interconnect_stats
        assert "snoop_reads" in report.interconnect_stats["coherence"]


class TestHitTiming:
    def test_hits_cost_hit_cycles_not_bus_cycles(self):
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, DataType.UINT32)
            for _ in range(64):
                yield from smem.read(vptr, offset=0)
            return True

        def run(cache):
            builder = PlatformBuilder().pes(1).wrapper_memories(1)
            if cache:
                builder = builder.l1_cache(sets=8, ways=2, line_bytes=16)
            platform = Platform(builder.build())
            platform.add_task(task)
            return platform.run()

        cached = run(True)
        flat = run(False)
        assert cached.simulated_cycles < flat.simulated_cycles
