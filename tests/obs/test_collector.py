"""Unit behaviour of the trace collector, ObsConfig and ctx.span."""

import pytest

from repro.obs import ObsConfig, TraceCollector
from repro.sw.task import TaskContext


class TestTraceCollector:
    def test_bounded_buffer_keeps_first_and_counts_drops(self):
        collector = TraceCollector(max_events=3)
        for index in range(5):
            collector.instant(f"e{index}", "irq", index * 10, ("g", "l"))
        assert len(collector) == 3
        assert [event.name for event in collector.events] == ["e0", "e1", "e2"]
        assert collector.dropped == 2
        summary = collector.summary()
        assert summary["events"] == 3
        assert summary["dropped"] == 2

    def test_category_filter_rejects_at_emission(self):
        collector = TraceCollector(categories=("task",))
        assert collector.complete("a", "task", 0, 5, ("pes", "pe0"))
        assert not collector.instant("b", "irq", 1, ("devices", "irq"))
        assert len(collector) == 1
        assert collector.filtered == 1
        assert collector.dropped == 0

    def test_by_category_and_counter_events(self):
        collector = TraceCollector()
        collector.counter("m", "metrics", 100, ("metrics", "counters"),
                          {"x": 1.0})
        collector.complete("t", "task", 0, 10, ("pes", "pe0"), note="n")
        assert [e.name for e in collector.by_category("metrics")] == ["m"]
        event = collector.by_category("task")[0]
        assert event.ph == "X" and event.dur == 10 and event.args == {
            "note": "n"}

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TraceCollector(max_events=0)


class TestObsConfig:
    def test_defaults_trace_only(self):
        config = ObsConfig()
        assert config.trace and not config.metrics_interval_cycles
        assert config.describe() == "trace"

    def test_describe_composes(self):
        config = ObsConfig(trace=True, metrics_interval_cycles=64,
                           host_profile=True)
        assert config.describe() == "trace+metrics@64c+hostprof"

    def test_rejects_all_heads_off(self):
        with pytest.raises(ValueError):
            ObsConfig(trace=False)

    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError):
            ObsConfig(categories=("task", "nonsense"))

    def test_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            ObsConfig(metrics_interval_cycles=-1)


class _FakeApi:
    port = None


def test_ctx_span_is_a_noop_without_obs():
    context = TaskContext(pe_id=0, apis=[_FakeApi()], clock_period=10)
    assert context.obs is None
    with context.span("phase"):
        pass  # must not raise and must not require a fabric


def test_ctx_span_records_through_a_recording_stub():
    class _Stub:
        def __init__(self):
            self.spans = []
            self.clock = 0

        def now(self):
            self.clock += 100
            return self.clock

        def task_span(self, context, name, began, ended):
            self.spans.append((context.name, name, began, ended))

    context = TaskContext(pe_id=1, apis=[_FakeApi()], clock_period=10)
    context.obs = _Stub()
    with context.span("lpc"):
        pass
    assert context.obs.spans == [("pe1", "lpc", 100, 200)]
