"""The ``python -m repro.obs.export`` demo CLI and its acceptance content.

A single devices+caches GSM run must yield Perfetto-loadable JSON
containing PE task spans, fabric transaction spans, an IRQ instant and
at least one ``ctx.span`` workload annotation.
"""

import json

from repro.obs.export import main


def _run_cli(tmp_path, *extra):
    out = tmp_path / "trace.json"
    assert main(["--quick", "-o", str(out), *extra]) == 0
    with open(out) as handle:
        return json.load(handle)


def _named(events, track_names):
    """Map pid/tid back to track names via the metadata events."""
    processes = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e["name"] == "process_name"}
    threads = {(e["pid"], e["tid"]): e["args"]["name"] for e in events
               if e.get("ph") == "M" and e["name"] == "thread_name"}
    resolved = []
    for event in events:
        if event.get("ph") == "M":
            continue
        group = processes.get(event["pid"])
        lane = threads.get((event["pid"], event["tid"]))
        resolved.append((group, lane, event))
    return resolved


def test_cli_emits_acceptance_content(tmp_path, capsys):
    payload = _run_cli(tmp_path)
    events = payload["traceEvents"]
    for event in events:
        for key in ("ph", "ts", "pid", "tid"):
            assert key in event
    resolved = _named(events, None)

    pe_tasks = [e for group, _, e in resolved
                if group == "pes" and e["ph"] == "X" and e["name"] == "task"]
    assert len(pe_tasks) == 2, "one task span per PE"

    fabric_spans = [e for group, _, e in resolved
                    if group == "fabric" and e["ph"] == "X"]
    assert fabric_spans, "fabric transaction spans expected"
    assert any(e["cat"] == "fabric" for e in fabric_spans)

    irq_instants = [e for group, _, e in resolved
                    if e["ph"] == "i" and e["cat"] == "irq"]
    assert irq_instants, "the periodic timer must land IRQ instants"

    annotations = [e for group, _, e in resolved
                   if group == "pes" and e["ph"] == "X"
                   and e["cat"] == "task" and e["name"] != "task"]
    assert annotations, "ctx.span workload annotations expected"
    assert any(e["name"].startswith("frame") for e in annotations)

    captured = capsys.readouterr()
    assert "wrote" in captured.out

    assert payload["otherData"]["dropped_events"] == 0
    assert payload["otherData"]["scenario"] == "obs-demo-gsm"


def test_cli_timeline_and_timeseries_options(tmp_path, capsys):
    ts_path = tmp_path / "ts.csv"
    _run_cli(tmp_path, "--timeline", "--timeseries-csv", str(ts_path))
    captured = capsys.readouterr()
    assert "timeline 0 .." in captured.out
    assert "metrics rows" in captured.out
    assert ts_path.exists()
