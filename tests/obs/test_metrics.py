"""The metrics sampler: boundary semantics, platform rows, writers."""

import csv
import json

from repro.api import (
    PlatformBuilder,
    Scenario,
    write_timeseries_csv,
    write_timeseries_json,
)
from repro.api.runner import run_scenario
from repro.obs.metrics import MetricsSampler


class TestBoundarySemantics:
    @staticmethod
    def _sampler(interval=100, **kwargs):
        state = {"count": 0}

        def deltas():
            return {"count": state["count"]}

        sampler = MetricsSampler(interval_ps=interval, clock_period=10,
                                 sample_deltas=deltas,
                                 sample_gauges=dict, **kwargs)
        return sampler, state

    def test_rows_stamp_at_crossed_boundaries(self):
        sampler, state = self._sampler()
        state["count"] = 3
        sampler.tick(50)       # within the first interval: no row
        assert sampler.rows == []
        state["count"] = 7
        sampler.tick(250)      # crosses 100 and 200
        assert [row["t_ps"] for row in sampler.rows] == [100, 200]
        assert [row["t_cycles"] for row in sampler.rows] == [10, 20]
        # Both boundaries sample the state at the first observation past
        # them: the delta lands on the first crossed boundary.
        assert sampler.rows[0]["count"] == 7
        assert sampler.rows[1]["count"] == 0

    def test_flush_emits_partial_tail(self):
        sampler, state = self._sampler()
        state["count"] = 2
        sampler.flush(130)
        assert [row["t_ps"] for row in sampler.rows] == [100, 130]

    def test_flush_without_tail_emits_boundaries_only(self):
        sampler, _ = self._sampler()
        sampler.flush(200)
        assert [row["t_ps"] for row in sampler.rows] == [100, 200]

    def test_derive_hook_sees_elapsed(self):
        seen = []

        def derive(row, elapsed):
            seen.append(elapsed)
            row["derived"] = True

        sampler, _ = self._sampler(derive=derive)
        sampler.flush(250)
        assert seen == [100, 100, 50]
        assert all(row["derived"] for row in sampler.rows)


def _result(tmp_path=None, interval=200):
    config = (PlatformBuilder().pes(2).wrapper_memories(1)
              .metrics(interval_cycles=interval).build())
    scenario = Scenario(name="m", config=config, workload="producer_consumer",
                        params={"num_items": 8, "seed": 3}, seed=3)
    result = run_scenario(scenario, keep_platform=True, capture_errors=False)
    return result.raise_for_status()


class TestPlatformTimeseries:
    def test_report_carries_rows_without_tracing(self):
        result = _result()
        rows = result.report.timeseries
        assert rows, "metrics-only obs must still produce rows"
        assert result.timeseries == rows  # ScenarioResult passthrough
        # Metrics-only: no trace collector at all.
        assert result.platform.obs.trace is None
        assert result.obs_summary["metrics_rows"] == len(rows)

    def test_rows_have_time_and_counter_columns(self):
        result = _result()
        rows = result.report.timeseries
        clock_period = result.report.clock_period
        for row in rows:
            assert row["t_cycles"] == row["t_ps"] // clock_period
        assert "bus_transactions" in rows[0]
        assert "bus_busy_cycles" in rows[0]
        assert "runnable" in rows[0]
        assert "outstanding" in rows[0]
        # Counter deltas over the whole series sum to the run's totals.
        total = sum(row["bus_transactions"] for row in rows)
        assert total == result.report.total_transactions()

    def test_rows_are_in_report_as_dict(self):
        report = _result().report
        assert report.as_dict()["timeseries"] == report.timeseries
        assert report.as_dict()["obs_summary"] == report.obs_summary


class TestWriters:
    def test_csv_round_trip(self, tmp_path):
        result = _result()
        path = tmp_path / "ts.csv"
        write_timeseries_csv(result.timeseries, str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.timeseries)
        assert rows[0]["t_ps"] == str(result.timeseries[0]["t_ps"])

    def test_json_round_trip(self, tmp_path):
        result = _result()
        path = tmp_path / "ts.json"
        write_timeseries_json(result.timeseries, str(path))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == "repro.obs.timeseries/v1"
        assert payload["count"] == len(result.timeseries)
        assert payload["rows"] == result.timeseries
        assert "t_ps" in payload["columns"]
