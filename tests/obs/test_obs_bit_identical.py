"""Observability must be timing- and schedule-transparent.

The acceptance bar of ``repro.obs`` (same shape as the sanitizers'
``tests/check/test_bit_identical.py``): an observed run reaches exactly
the same simulated time, kernel counters and results as the unobserved
run of the same scenario — on every topology, with devices and caches —
and the default ``obs=None`` platform installs zero hooks.
"""

import pytest

import repro.sw.catalog  # noqa: F401  (registers the workloads)
from repro.api import PlatformBuilder
from repro.soc.platform import Platform
from repro.sw.registry import workload

#: Golden kernel counters that must not move when observability attaches.
COUNTERS = ("delta_cycles", "timed_steps", "process_activations",
            "events_fired")


def _builder(kind):
    builder = PlatformBuilder().pes(2).wrapper_memories(1)
    if kind == "crossbar":
        builder = builder.crossbar()
    elif kind == "mesh":
        builder = builder.mesh()
    return builder


def _run(builder, name, observe, **params):
    if observe:
        builder = builder.trace().metrics(interval_cycles=128)
    config = builder.build()
    inst = workload.create(name, config, **params)
    platform = Platform(config)
    platform.add_tasks(inst.tasks)
    return platform.run(), platform


@pytest.mark.parametrize("kind", ["shared_bus", "crossbar", "mesh"])
def test_obs_does_not_perturb_simulated_time(kind):
    off, _ = _run(_builder(kind), "producer_consumer", False,
                  num_items=8, seed=3)
    on, platform = _run(_builder(kind), "producer_consumer", True,
                        num_items=8, seed=3)
    assert on.simulated_time == off.simulated_time
    for counter in COUNTERS:
        assert on.kernel_stats[counter] == off.kernel_stats[counter], counter
    assert on.results == off.results
    # ... while actually having observed something.
    assert len(platform.obs.trace) > 0
    assert len(on.timeseries) > 0


def test_obs_transparent_with_devices_and_caches():
    def builder():
        return (PlatformBuilder().pes(2).wrapper_memories(2).dma(2)
                .l1_cache(sets=8, ways=2, line_bytes=16))

    off, _ = _run(builder(), "stress_dma_copy", False, words=32, seed=5)
    on, platform = _run(builder(), "stress_dma_copy", True, words=32, seed=5)
    assert on.simulated_time == off.simulated_time
    for counter in COUNTERS:
        assert on.kernel_stats[counter] == off.kernel_stats[counter], counter
    assert on.results == off.results
    trace = platform.obs.trace
    assert trace.by_category("dma"), "DMA transfer spans expected"
    assert trace.by_category("irq"), "IRQ instants expected"
    assert trace.by_category("cache"), "cache fill/writeback spans expected"


def test_obs_transparent_alongside_sanitizers():
    """Both observer stacks attach without displacing each other."""
    base, _ = _run(_builder("shared_bus"), "producer_consumer", False,
                   num_items=8, seed=3)
    builder = _builder("shared_bus").sanitize()
    both, platform = _run(builder, "producer_consumer", True,
                          num_items=8, seed=3)
    assert both.simulated_time == base.simulated_time
    for counter in COUNTERS:
        assert both.kernel_stats[counter] == base.kernel_stats[counter]
    assert both.sanitizer_reports == []
    assert platform.irq_controller is None  # no devices in this scenario
    assert len(platform.obs.trace) > 0


def test_obs_disabled_installs_zero_hooks():
    config = _builder("shared_bus").build()
    assert config.obs is None
    platform = Platform(config)
    assert platform.obs is None
    assert platform.interconnect._issue_hooks == []
    assert platform.interconnect._complete_hooks == []


def test_obs_enabled_installs_hooks_and_observer_slots():
    config = (_builder("shared_bus").dma(1)
              .trace().metrics(interval_cycles=64).build())
    platform = Platform(config)
    assert platform.obs is not None
    assert len(platform.interconnect._issue_hooks) == 1
    assert len(platform.interconnect._complete_hooks) == 1
    assert platform.irq_controller.obs_observer is platform.obs
    assert platform.irq_controller.check_observer is None  # untouched
    for engine in platform.dma_engines:
        assert engine.obs_observer is platform.obs
