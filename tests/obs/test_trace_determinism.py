"""Trace determinism and Perfetto JSON well-formedness.

Fixed-seed ``gsm_encode`` runs must produce identical event streams
(names, categories, simulated timestamps, tracks) across two runs on
every topology, and the exported Chrome trace-event JSON must round-trip
``json.loads`` with the required ``ph``/``ts``/``pid``/``tid`` keys on
every event.
"""

import json

import pytest

from repro.api import PlatformBuilder, Scenario
from repro.api.runner import run_scenario
from repro.obs.export import chrome_trace


def _scenario(kind):
    builder = PlatformBuilder().pes(2).wrapper_memories(1)
    if kind == "crossbar":
        builder = builder.crossbar()
    elif kind == "mesh":
        builder = builder.mesh()
    config = builder.trace().metrics(interval_cycles=200).build()
    return Scenario(name=f"det-{kind}", config=config, workload="gsm_encode",
                    params={"frames": 1, "seed": 9}, seed=9)


def _trace_of(kind):
    result = run_scenario(_scenario(kind), keep_platform=True,
                          capture_errors=False)
    result.raise_for_status()
    return result.platform.obs.trace


def _stream(trace):
    return [(e.ph, e.name, e.cat, e.ts, e.dur, e.track, tuple(sorted(e.args)))
            for e in trace.events]


@pytest.mark.parametrize("kind", ["shared_bus", "crossbar", "mesh"])
def test_two_runs_produce_identical_event_streams(kind):
    first = _trace_of(kind)
    second = _trace_of(kind)
    assert _stream(first) == _stream(second)
    assert first.dropped == second.dropped == 0


@pytest.mark.parametrize("kind", ["shared_bus", "crossbar", "mesh"])
def test_perfetto_json_round_trips_with_required_keys(kind):
    trace = _trace_of(kind)
    payload = chrome_trace(trace)
    parsed = json.loads(json.dumps(payload))
    events = parsed["traceEvents"]
    assert events, "export produced no events"
    for event in events:
        for key in ("ph", "ts", "pid", "tid"):
            assert key in event, f"event missing {key!r}: {event}"
        if event["ph"] == "X":
            assert "dur" in event
        if event["ph"] == "M":
            assert event["args"]["name"]
    # The export itself is deterministic: same run, same bytes.
    assert json.dumps(payload, sort_keys=True) == json.dumps(
        chrome_trace(trace), sort_keys=True)


def test_export_is_byte_identical_across_runs():
    first = json.dumps(chrome_trace(_trace_of("shared_bus")), sort_keys=True)
    second = json.dumps(chrome_trace(_trace_of("shared_bus")), sort_keys=True)
    assert first == second
