"""The text timeline renderer."""

from repro.obs import TraceCollector, longest_spans, render_timeline


def _collector():
    collector = TraceCollector()
    collector.complete("task", "task", 0, 1000, ("pes", "pe0"))
    collector.complete("read smem0", "fabric", 100, 200, ("fabric", "pe0"))
    collector.instant("irq raise", "irq", 500, ("devices", "irq"))
    collector.counter("platform", "metrics", 250, ("metrics", "counters"),
                      {"x": 1})
    return collector


def test_render_marks_spans_instants_and_counters():
    text = render_timeline(_collector(), width=40)
    lines = text.splitlines()
    assert lines[0].startswith("timeline 0 .. 1_000 ps")
    by_label = {line.split()[0]: line for line in lines[1:-1]}
    assert "=" in by_label["pes/pe0"]
    assert "!" in by_label["devices/irq"]
    assert "*" in by_label["metrics/counters"]
    assert by_label["pes/pe0"].rstrip().endswith("1 ev")
    assert lines[-1].startswith("legend:")


def test_category_filter_and_empty_render():
    text = render_timeline(_collector(), width=40, categories=("irq",))
    assert "pes/pe0" not in text and "devices/irq" in text
    assert render_timeline([], width=40) == "timeline: no events"


def test_render_is_deterministic():
    assert render_timeline(_collector()) == render_timeline(_collector())


def test_longest_spans_orders_by_duration():
    spans = longest_spans(_collector(), count=5)
    assert [span.name for span in spans] == ["task", "read smem0"]
