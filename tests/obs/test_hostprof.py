"""Host-time attribution: buckets per process, reported not traced."""

from repro.api import PlatformBuilder, Scenario
from repro.api.runner import run_scenario


def test_host_profile_buckets_land_in_obs_summary():
    config = (PlatformBuilder().pes(2).wrapper_memories(1)
              .trace(host_profile=True).build())
    scenario = Scenario(name="hp", config=config, workload="producer_consumer",
                        params={"num_items": 8, "seed": 3}, seed=3)
    result = run_scenario(scenario, keep_platform=True, capture_errors=False)
    result.raise_for_status()
    profile = result.obs_summary["host_profile"]
    assert profile, "expected at least one host-time bucket"
    assert all(seconds >= 0 for seconds in profile.values())
    # Attribution keys are process names (or the kernel bucket).
    assert any(".program" in name or name == "kernel" for name in profile)
    # Host time is wall-clock and thus non-deterministic: it must stay
    # out of the deterministic trace event stream.
    assert all(event.cat != "hostprof"
               for event in result.platform.obs.trace.events)
