"""Tests for address decoding and arbitration policies."""

import pytest
from hypothesis import given, strategies as st

from repro.fabric import (
    AddressDecodeError,
    AddressMap,
    AddressMapConflict,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    make_arbiter,
)


class TestAddressMap:
    def make_map(self):
        amap = AddressMap()
        amap.add_region("mem0", 0x0000, 0x1000, "slave0")
        amap.add_region("mem1", 0x2000, 0x800, "slave1")
        return amap

    def test_decode_inside_region(self):
        amap = self.make_map()
        slave, offset, region = amap.decode(0x10)
        assert slave == "slave0"
        assert offset == 0x10
        assert region.name == "mem0"

    def test_decode_offset_is_relative(self):
        amap = self.make_map()
        slave, offset, _ = amap.decode(0x2004)
        assert slave == "slave1"
        assert offset == 4

    def test_decode_unmapped_raises(self):
        amap = self.make_map()
        with pytest.raises(AddressDecodeError):
            amap.decode(0x1800)

    def test_overlap_rejected(self):
        amap = self.make_map()
        with pytest.raises(AddressMapConflict):
            amap.add_region("bad", 0x0800, 0x1000, "slave2")

    def test_duplicate_name_rejected(self):
        amap = self.make_map()
        with pytest.raises(AddressMapConflict):
            amap.add_region("mem0", 0x8000, 0x100, "slave2")

    def test_adjacent_regions_allowed(self):
        amap = self.make_map()
        amap.add_region("mem2", 0x1000, 0x1000, "slave2")
        assert amap.decode(0x1000)[0] == "slave2"

    def test_region_by_name_and_base_of(self):
        amap = self.make_map()
        assert amap.region_by_name("mem1").base == 0x2000
        assert amap.base_of("slave1") == 0x2000
        with pytest.raises(KeyError):
            amap.region_by_name("ghost")
        with pytest.raises(KeyError):
            amap.base_of("ghost")

    def test_slaves_and_totals(self):
        amap = self.make_map()
        assert amap.slaves() == ["slave0", "slave1"]
        assert amap.total_mapped_bytes() == 0x1800
        assert len(amap) == 2

    def test_invalid_region_parameters(self):
        amap = AddressMap()
        with pytest.raises(ValueError):
            amap.add_region("neg", -4, 16, "s")
        with pytest.raises(ValueError):
            amap.add_region("empty", 0, 0, "s")

    @given(st.integers(min_value=0, max_value=0x2FFF))
    def test_decode_matches_contains(self, address):
        amap = self.make_map()
        region = amap.find_region(address)
        if region is None:
            with pytest.raises(AddressDecodeError):
                amap.decode(address)
        else:
            slave, offset, found = amap.decode(address)
            assert found is region
            assert 0 <= offset < region.size


class TestAddressMapBoundaries:
    """Out-of-range and exact-boundary validation edge cases."""

    def make_map(self):
        amap = AddressMap()
        amap.add_region("mem0", 0x0000, 0x1000, "slave0")
        amap.add_region("mem1", 0x2000, 0x800, "slave1")
        return amap

    def test_decode_at_region_end_is_out_of_range(self):
        amap = self.make_map()
        assert amap.decode(0x0FFF)[0] == "slave0"  # last byte is in
        with pytest.raises(AddressDecodeError):
            amap.decode(0x2800)  # first byte after mem1 is out

    def test_decode_above_all_regions(self):
        amap = self.make_map()
        with pytest.raises(AddressDecodeError):
            amap.decode(0xFFFF_FFFF)
        assert amap.find_region(0xFFFF_FFFF) is None

    def test_single_byte_region_boundaries(self):
        amap = AddressMap()
        amap.add_region("bit", 0x42, 1, "s")
        assert amap.decode(0x42)[1] == 0
        with pytest.raises(AddressDecodeError):
            amap.decode(0x41)
        with pytest.raises(AddressDecodeError):
            amap.decode(0x43)

    def test_overlap_one_byte_at_start(self):
        amap = self.make_map()
        with pytest.raises(AddressMapConflict):
            amap.add_region("tail", 0x0FFF, 0x100, "s")  # overlaps last byte

    def test_overlap_fully_contained_region(self):
        amap = self.make_map()
        with pytest.raises(AddressMapConflict):
            amap.add_region("inner", 0x2100, 0x10, "s")

    def test_overlap_fully_containing_region(self):
        amap = self.make_map()
        with pytest.raises(AddressMapConflict):
            amap.add_region("outer", 0x1000, 0x4000, "s")

    def test_overlap_identical_window_different_name(self):
        amap = self.make_map()
        with pytest.raises(AddressMapConflict):
            amap.add_region("twin", 0x2000, 0x800, "s")

    def test_failed_add_leaves_map_unchanged(self):
        amap = self.make_map()
        with pytest.raises(AddressMapConflict):
            amap.add_region("bad", 0x0800, 0x1000, "s")
        assert len(amap) == 2
        assert amap.find_region(0x1800) is None

    @given(st.integers(min_value=0, max_value=0x4000),
           st.integers(min_value=1, max_value=0x1000))
    def test_overlap_check_matches_interval_arithmetic(self, base, size):
        amap = self.make_map()
        intervals = [(0x0000, 0x1000), (0x2000, 0x2800)]
        overlaps = any(base < end and lo < base + size
                       for lo, end in intervals)
        if overlaps:
            with pytest.raises(AddressMapConflict):
                amap.add_region("probe", base, size, "s")
        else:
            amap.add_region("probe", base, size, "s")
            assert amap.decode(base)[0] == "s"


class TestRoundRobinArbiter:
    def test_rotation(self):
        arb = RoundRobinArbiter()
        grants = [arb.grant([0, 1, 2]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_skips_idle_masters(self):
        arb = RoundRobinArbiter()
        assert arb.grant([1, 3]) == 1
        assert arb.grant([1, 3]) == 3
        assert arb.grant([1, 3]) == 1

    def test_empty_requesters(self):
        arb = RoundRobinArbiter()
        assert arb.grant([]) is None

    def test_reset(self):
        arb = RoundRobinArbiter()
        arb.grant([0, 1])
        arb.reset()
        assert arb.grant([0, 1]) == 0
        assert arb.grant_counts == {0: 1}

    def test_fairness_over_many_rounds(self):
        arb = RoundRobinArbiter()
        for _ in range(300):
            arb.grant([0, 1, 2])
        counts = arb.grant_counts
        assert counts[0] == counts[1] == counts[2] == 100

    @given(st.lists(st.sets(st.integers(0, 7), min_size=1), min_size=1, max_size=50))
    def test_grant_always_a_requester(self, rounds):
        arb = RoundRobinArbiter()
        for requesters in rounds:
            winner = arb.grant(sorted(requesters))
            assert winner in requesters


class TestFixedPriorityArbiter:
    def test_lowest_id_wins_by_default(self):
        arb = FixedPriorityArbiter()
        assert arb.grant([3, 1, 2]) == 1

    def test_explicit_priority_order(self):
        arb = FixedPriorityArbiter(priority_order=[2, 0, 1])
        assert arb.grant([0, 1, 2]) == 2
        assert arb.grant([0, 1]) == 0

    def test_requester_not_in_order_falls_back(self):
        arb = FixedPriorityArbiter(priority_order=[5])
        assert arb.grant([7, 9]) == 7

    def test_starvation_is_possible(self):
        arb = FixedPriorityArbiter()
        for _ in range(10):
            assert arb.grant([0, 1]) == 0
        assert 1 not in arb.grant_counts


class TestTdmaArbiter:
    def test_slot_owner_wins(self):
        arb = TdmaArbiter(schedule=[0, 1])
        assert arb.grant([0, 1]) == 0
        assert arb.grant([0, 1]) == 1
        assert arb.grant([0, 1]) == 0

    def test_fallback_when_owner_idle(self):
        arb = TdmaArbiter(schedule=[0, 1])
        assert arb.grant([1]) == 1  # slot 0's owner idle → fallback
        assert arb.slot_misses == 1

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            TdmaArbiter(schedule=[])

    def test_empty_requesters_advances_slot(self):
        arb = TdmaArbiter(schedule=[0, 1])
        assert arb.grant([]) is None
        assert arb.grant([1]) == 1  # now slot 1

    def test_reset(self):
        arb = TdmaArbiter(schedule=[0, 1, 2])
        arb.grant([0])
        arb.reset()
        assert arb.grant([0, 1, 2]) == 0


class TestTdmaSlotWraparound:
    """Slot-counter wraparound edge cases of the TDMA schedule."""

    def test_slot_wraps_after_last_schedule_entry(self):
        arb = TdmaArbiter(schedule=[0, 1, 2])
        grants = [arb.grant([0, 1, 2]) for _ in range(7)]
        # Slots 0,1,2 then wrap to 0,1,2,0 — never an IndexError.
        assert grants == [0, 1, 2, 0, 1, 2, 0]

    def test_wraparound_with_idle_slots_between(self):
        arb = TdmaArbiter(schedule=[0, 1])
        assert arb.grant([0, 1]) == 0      # slot 0
        assert arb.grant([]) is None       # slot 1 elapses idle
        assert arb.grant([0, 1]) == 0      # wrapped back to slot 0
        assert arb.grant([0, 1]) == 1      # slot 1 again

    def test_idle_only_rounds_wrap_the_slot_counter(self):
        arb = TdmaArbiter(schedule=[0, 1, 2])
        for _ in range(3 * 5 + 1):         # 5 full idle cycles + 1 slot
            assert arb.grant([]) is None
        assert arb.grant([0, 1, 2]) == 1   # counter sits on slot 1

    def test_single_slot_schedule_always_wraps_to_owner(self):
        arb = TdmaArbiter(schedule=[7])
        assert arb.grant([7, 9]) == 7
        assert arb.grant([7, 9]) == 7
        assert arb.slot_misses == 0
        assert arb.grant([9]) == 9          # owner idle -> fallback
        assert arb.slot_misses == 1

    def test_fallback_at_wraparound_does_not_shift_schedule(self):
        arb = TdmaArbiter(schedule=[0, 1])
        assert arb.grant([0, 1]) == 0      # slot 0
        assert arb.grant([0]) == 0         # slot 1's owner idle -> fallback
        assert arb.slot_misses == 1
        # The miss consumed slot 1: the wrapped slot 0 still belongs to 0.
        assert arb.grant([0, 1]) == 0

    def test_repeated_owner_schedule_wraps(self):
        arb = TdmaArbiter(schedule=[0, 0, 1])
        grants = [arb.grant([0, 1]) for _ in range(6)]
        assert grants == [0, 0, 1, 0, 0, 1]

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    def test_slot_counter_stays_in_schedule_bounds(self, pattern):
        arb = TdmaArbiter(schedule=[0, 1, 2])
        for busy in pattern:
            arb.grant([0, 1, 2] if busy else [])
            assert 0 <= arb._slot < 3


class TestFactory:
    def test_make_round_robin(self):
        assert isinstance(make_arbiter("round_robin"), RoundRobinArbiter)

    def test_make_fixed_priority(self):
        arb = make_arbiter("fixed_priority", priority_order=[1, 0])
        assert isinstance(arb, FixedPriorityArbiter)

    def test_make_tdma(self):
        assert isinstance(make_arbiter("tdma", schedule=[0, 1]), TdmaArbiter)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_arbiter("magic")
