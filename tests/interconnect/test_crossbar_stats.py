"""Stats parity across the three interconnects: identical per-master
columns, decode-error accounting and utilization on bus, crossbar and mesh
(the topology benches rely on these being comparable)."""

import pytest

from repro.api import ExperimentRunner, PlatformBuilder, Scenario
from repro.fabric import BusOp, BusRequest, MasterStats, ResponseStatus
from repro.interconnect import Crossbar
from repro.kernel import Module, Simulator

from test_bus import MasterHarness, ScratchSlave


def run_top(build):
    top = Module("top")
    artifacts = build(top)
    sim = Simulator(top)
    sim.run()
    return sim, artifacts


class TestCrossbarDecodeAccounting:
    def test_decode_error_accounted_per_master(self):
        def build(top):
            xbar = Crossbar("xbar", period=10, parent=top)
            xbar.attach_slave("ram", 0x0, 0x100, ScratchSlave())
            harness = MasterHarness(
                "m0", xbar.master_port(3),
                [BusRequest(3, BusOp.READ, 0xDEAD_0000)], parent=top)
            return xbar, harness

        _sim, (xbar, harness) = run_top(build)
        [response] = harness.responses
        assert response.status is ResponseStatus.DECODE_ERROR
        assert xbar.stats.decode_errors == 1
        # Parity with SharedBus: the failed transfer shows up in the
        # per-master columns too.
        assert xbar.stats.master(3).transactions == 1
        assert xbar.stats.master(3).errors == 1
        assert xbar.stats.transactions == 1

    def test_mixed_good_and_bad_transfers(self):
        def build(top):
            xbar = Crossbar("xbar", period=10, parent=top)
            xbar.attach_slave("ram", 0x0, 0x100, ScratchSlave())
            script = [
                BusRequest(0, BusOp.WRITE, 0x10, data=1),
                BusRequest(0, BusOp.READ, 0xBAD0_0000),
                BusRequest(0, BusOp.READ, 0x10),
            ]
            harness = MasterHarness("m0", xbar.master_port(0), script,
                                    parent=top)
            return xbar, harness

        _sim, (xbar, harness) = run_top(build)
        statuses = [r.status for r in harness.responses]
        assert statuses == [ResponseStatus.OK, ResponseStatus.DECODE_ERROR,
                            ResponseStatus.OK]
        per_master = xbar.stats.master(0)
        assert per_master.transactions == 3
        assert per_master.errors == 1
        assert per_master.reads == 2
        assert per_master.writes == 1


class TestStatsSerialization:
    def test_master_stats_as_dict(self):
        stats = MasterStats(transactions=3, reads=2, writes=1, words=7,
                            busy_cycles=9, wait_cycles=4, errors=1)
        assert stats.as_dict() == {
            "transactions": 3, "reads": 2, "writes": 1, "words": 7,
            "busy_cycles": 9, "wait_cycles": 4, "errors": 1,
        }

    def test_bus_stats_as_dict_orders_masters(self):
        from repro.fabric import BusStats

        stats = BusStats(transactions=2, busy_cycles=5)
        stats.master(2).transactions = 1
        stats.master(0).transactions = 1
        as_dict = stats.as_dict()
        assert list(as_dict["per_master"]) == [0, 2]
        assert as_dict["transactions"] == 2
        assert as_dict["decode_errors"] == 0


@pytest.mark.parametrize("topology", ["shared_bus", "crossbar", "mesh"])
def test_report_per_master_columns_uniform(topology):
    builder = PlatformBuilder().pes(3).wrapper_memories(1)
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh(rows=2, cols=2)
    scenario = Scenario(name=f"stats-{topology}", config=builder.build(),
                        workload="fir", params={"num_samples": 16, "seed": 4},
                        seed=4)
    [result] = ExperimentRunner([scenario]).run()
    result.raise_for_status()
    stats = result.report.interconnect_stats
    assert stats["transactions"] > 0
    assert 0.0 <= stats["utilization"] <= 1.0
    per_master = stats["per_master"]
    assert set(per_master) == {0, 1, 2}
    columns = {"transactions", "reads", "writes", "words", "busy_cycles",
               "wait_cycles", "errors"}
    for row in per_master.values():
        assert set(row) == columns
        assert row["transactions"] == row["reads"] + row["writes"]
