"""Tests for the BusMonitor's per-op latency percentile aggregation."""

from repro.fabric import BusOp, BusRequest, BusResponse, BusSlave
from repro.interconnect.monitor import BusMonitor, _nearest_rank


class FixedLatencySlave(BusSlave):
    """Answers every request after a latency taken from a schedule."""

    def __init__(self, latencies):
        self.latencies = list(latencies)
        self.calls = 0

    def access(self, request, offset):
        return BusResponse(data=offset)

    def latency(self, request):
        latency = self.latencies[self.calls % len(self.latencies)]
        self.calls += 1
        return latency


def drive(monitor, request, offset=0):
    generator = monitor.serve(request, offset)
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


def read(master=0, address=0):
    return BusRequest(master, BusOp.READ, address)


def write(master=0, address=0):
    return BusRequest(master, BusOp.WRITE, address, data=1)


class TestNearestRank:
    def test_empty_sample(self):
        assert _nearest_rank([], 0.5) == 0

    def test_single_sample(self):
        assert _nearest_rank([7], 0.5) == 7
        assert _nearest_rank([7], 0.95) == 7

    def test_known_percentiles(self):
        ordered = list(range(1, 11))  # 1..10
        assert _nearest_rank(ordered, 0.50) == 5
        assert _nearest_rank(ordered, 0.95) == 10


class TestLatencyPercentiles:
    def test_per_op_split_and_values(self):
        monitor = BusMonitor(FixedLatencySlave([1, 2, 3, 4, 5, 6, 7, 8, 9, 10]))
        for _ in range(10):
            drive(monitor, read())
        summary = monitor.latency_percentiles()
        assert set(summary) == {"read", "all"}
        assert summary["read"]["count"] == 10
        assert summary["read"]["p50"] == 5
        assert summary["read"]["p95"] == 10
        assert summary["read"]["max"] == 10

    def test_reads_and_writes_aggregate_separately(self):
        monitor = BusMonitor(FixedLatencySlave([2]))
        drive(monitor, read())
        drive(monitor, write())
        drive(monitor, write())
        summary = monitor.latency_percentiles()
        assert summary["read"]["count"] == 1
        assert summary["write"]["count"] == 2
        assert summary["all"]["count"] == 3

    def test_empty_monitor(self):
        monitor = BusMonitor(FixedLatencySlave([1]))
        assert monitor.latency_percentiles() == {}

    def test_empty_sample_summary_is_explicit_no_data(self):
        # Regression: an empty sample set used to report p50/p95/max of 0,
        # indistinguishable from observed zero-cycle latencies.
        from repro.fabric import percentile_summary

        assert percentile_summary([]) == {
            "count": 0, "p50": None, "p95": None, "max": None,
        }
        # The monitor shim re-exports the shared implementation.
        from repro.interconnect.monitor import (
            percentile_summary as shimmed,
        )

        assert shimmed is percentile_summary

    def test_stats_block_is_json_ready(self):
        import json

        monitor = BusMonitor(FixedLatencySlave([3]), name="probe")
        drive(monitor, read())
        block = monitor.stats()
        assert block["name"] == "probe"
        assert block["transactions"] == 1
        assert block["reads"] == 1
        assert block["writes"] == 0
        json.dumps(block)


class TestPlatformSurfacing:
    def test_monitored_platform_reports_percentiles(self):
        from repro.api import PlatformBuilder
        from repro.memory import DataType
        from repro.soc import Platform

        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(8, DataType.UINT32)
            yield from smem.write_array(vptr, list(range(8)))
            yield from smem.read_array(vptr, 8)
            yield from smem.free(vptr)
            return True

        platform = Platform(
            PlatformBuilder().pes(1).wrapper_memories(1).monitored().build())
        platform.add_task(task)
        report = platform.run()
        stats = report.interconnect_stats
        assert stats["memory_transactions"] > 0
        monitors = stats["memory_monitors"]
        assert len(monitors) == 1
        percentiles = monitors[0]["latency_percentiles"]
        assert "write" in percentiles and "all" in percentiles
        assert percentiles["all"]["p50"] >= 1
        assert percentiles["all"]["max"] >= percentiles["all"]["p95"] \
            >= percentiles["all"]["p50"]

    def test_unmonitored_platform_omits_the_block(self):
        from repro.api import PlatformBuilder
        from repro.memory import DataType
        from repro.soc import Platform

        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(2, DataType.UINT32)
            yield from smem.free(vptr)
            return True

        platform = Platform(
            PlatformBuilder().pes(1).wrapper_memories(1).build())
        platform.add_task(task)
        report = platform.run()
        assert "memory_monitors" not in report.interconnect_stats
        assert "memory_transactions" not in report.interconnect_stats