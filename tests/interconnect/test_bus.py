"""Tests for the shared bus, crossbar and monitor using simple test slaves."""

import pytest

from repro.fabric import BusOp, BusRequest, BusResponse, BusSlave, ResponseStatus
from repro.interconnect import BusMonitor, Crossbar, SharedBus
from repro.kernel import Module, Simulator


class ScratchSlave(BusSlave):
    """A tiny word-addressable RAM with configurable access latency."""

    def __init__(self, words=64, cycles=1):
        self.storage = [0] * words
        self.cycles = cycles
        self.accesses = 0

    def latency(self, request):
        return self.cycles

    def access(self, request, offset):
        self.accesses += 1
        index = offset // 4
        if index >= len(self.storage):
            return BusResponse(status=ResponseStatus.SLAVE_ERROR)
        if request.op is BusOp.WRITE:
            if request.burst_data is not None:
                for i, word in enumerate(request.burst_data):
                    self.storage[index + i] = word
            else:
                self.storage[index] = request.data
            return BusResponse()
        if request.burst_length:
            return BusResponse(
                burst_data=self.storage[index:index + request.burst_length]
            )
        return BusResponse(data=self.storage[index])


class MasterHarness(Module):
    """Runs a scripted list of bus operations and records the responses."""

    def __init__(self, name, port, script, parent=None, start_delay=0):
        super().__init__(name, parent)
        self.port = port
        self.script = script
        self.responses = []
        self.finish_time = None
        self.start_delay = start_delay
        self.add_process(self._run, name="driver")

    def _run(self):
        if self.start_delay:
            yield self.start_delay
        for request in self.script:
            response = yield from self.port.transfer(request)
            self.responses.append(response)
        self.finish_time = self.port._interconnect.sim_now()


def run_platform(build):
    top = Module("top")
    artifacts = build(top)
    sim = Simulator(top)
    sim.run()
    return sim, artifacts


class TestSharedBus:
    def test_single_master_read_write(self):
        def build(top):
            bus = SharedBus("bus", period=10, parent=top)
            slave = ScratchSlave()
            bus.attach_slave("ram", 0x0, 0x100, slave)
            port = bus.master_port(0)
            script = [
                BusRequest(0, BusOp.WRITE, 0x10, data=0xDEAD),
                BusRequest(0, BusOp.READ, 0x10),
            ]
            harness = MasterHarness("m0", port, script, parent=top)
            return bus, slave, harness

        _, (bus, slave, harness) = run_platform(build)
        assert [r.ok for r in harness.responses] == [True, True]
        assert harness.responses[1].data == 0xDEAD
        assert slave.accesses == 2
        assert bus.stats.transactions == 2

    def test_decode_error(self):
        def build(top):
            bus = SharedBus("bus", period=10, parent=top)
            bus.attach_slave("ram", 0x0, 0x100, ScratchSlave())
            port = bus.master_port(0)
            harness = MasterHarness(
                "m0", port, [BusRequest(0, BusOp.READ, 0x9999)], parent=top
            )
            return bus, harness

        _, (bus, harness) = run_platform(build)
        assert harness.responses[0].status is ResponseStatus.DECODE_ERROR
        assert bus.stats.decode_errors == 1

    def test_latency_accounting(self):
        def build(top):
            bus = SharedBus("bus", period=10, arbitration_cycles=2, parent=top)
            slave = ScratchSlave(cycles=3)
            bus.attach_slave("ram", 0x0, 0x100, slave)
            port = bus.master_port(0)
            harness = MasterHarness(
                "m0", port, [BusRequest(0, BusOp.READ, 0x0)], parent=top
            )
            return bus, harness

        _, (bus, harness) = run_platform(build)
        response = harness.responses[0]
        assert response.slave_cycles == 3
        assert response.total_cycles == 5

    def test_two_masters_are_serialised(self):
        def build(top):
            bus = SharedBus("bus", period=10, arbitration_cycles=0, parent=top)
            slave = ScratchSlave(cycles=4)
            bus.attach_slave("ram", 0x0, 0x100, slave)
            scripts = [
                [BusRequest(i, BusOp.WRITE, 0x20 + 4 * i, data=i)] for i in range(2)
            ]
            harnesses = [
                MasterHarness(f"m{i}", bus.master_port(i), scripts[i], parent=top)
                for i in range(2)
            ]
            return bus, slave, harnesses

        sim, (bus, slave, harnesses) = run_platform(build)
        # Two 4-cycle transfers over a 10-unit period bus: at least 80 time units.
        assert sim.now >= 80
        assert slave.storage[8] == 0 and slave.storage[9] == 1
        assert bus.stats.per_master[0].transactions == 1
        assert bus.stats.per_master[1].transactions == 1

    def test_round_robin_fairness_under_contention(self):
        def build(top):
            bus = SharedBus("bus", period=10, arbitration_cycles=0, parent=top)
            slave = ScratchSlave(cycles=1)
            bus.attach_slave("ram", 0x0, 0x400, slave)
            harnesses = []
            for master in range(3):
                script = [
                    BusRequest(master, BusOp.WRITE, 4 * (master * 16 + i), data=i)
                    for i in range(10)
                ]
                harnesses.append(
                    MasterHarness(f"m{master}", bus.master_port(master), script,
                                  parent=top)
                )
            return bus, harnesses

        _, (bus, harnesses) = run_platform(build)
        counts = [bus.stats.per_master[i].transactions for i in range(3)]
        assert counts == [10, 10, 10]
        finish_times = [h.finish_time for h in harnesses]
        assert max(finish_times) - min(finish_times) <= 3 * 10 * 2

    def test_burst_transfer(self):
        def build(top):
            bus = SharedBus("bus", period=10, parent=top)
            slave = ScratchSlave()
            bus.attach_slave("ram", 0x0, 0x100, slave)
            port = bus.master_port(0)
            script = [
                BusRequest(0, BusOp.WRITE, 0x0, burst_data=[1, 2, 3, 4]),
                BusRequest(0, BusOp.READ, 0x0, burst_length=4),
            ]
            harness = MasterHarness("m0", port, script, parent=top)
            return slave, harness

        _, (slave, harness) = run_platform(build)
        assert slave.storage[:4] == [1, 2, 3, 4]
        assert harness.responses[1].burst_data == [1, 2, 3, 4]

    def test_duplicate_master_id_rejected(self):
        bus = SharedBus("bus", period=10)
        bus.master_port(0)
        with pytest.raises(ValueError):
            bus.master_port(0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SharedBus("bus", period=0)
        with pytest.raises(ValueError):
            SharedBus("bus", period=10, arbitration_cycles=-1)

    def test_utilization(self):
        def build(top):
            bus = SharedBus("bus", period=10, arbitration_cycles=0, parent=top)
            bus.attach_slave("ram", 0x0, 0x100, ScratchSlave(cycles=2))
            port = bus.master_port(0)
            script = [BusRequest(0, BusOp.READ, 0x0) for _ in range(5)]
            harness = MasterHarness("m0", port, script, parent=top)
            return bus, harness

        sim, (bus, _) = run_platform(build)
        util = bus.utilization(sim.now)
        assert 0.5 < util <= 1.0


class TestCrossbar:
    def test_parallel_channels_overlap(self):
        def build(top):
            xbar = Crossbar("xbar", period=10, arbitration_cycles=0, parent=top)
            slow_a = ScratchSlave(cycles=10)
            slow_b = ScratchSlave(cycles=10)
            xbar.attach_slave("a", 0x0000, 0x100, slow_a)
            xbar.attach_slave("b", 0x1000, 0x100, slow_b)
            harness_a = MasterHarness(
                "m0", xbar.master_port(0), [BusRequest(0, BusOp.READ, 0x0)], parent=top
            )
            harness_b = MasterHarness(
                "m1", xbar.master_port(1), [BusRequest(1, BusOp.READ, 0x1000)],
                parent=top,
            )
            return xbar, harness_a, harness_b

        sim, (xbar, *_rest) = run_platform(build)
        # Both 10-cycle transfers overlap → total time ~100, not ~200.
        assert sim.now <= 150
        assert xbar.stats.transactions == 2

    def test_same_slave_serialised(self):
        def build(top):
            xbar = Crossbar("xbar", period=10, arbitration_cycles=0, parent=top)
            slave = ScratchSlave(cycles=10)
            xbar.attach_slave("a", 0x0000, 0x100, slave)
            h0 = MasterHarness(
                "m0", xbar.master_port(0), [BusRequest(0, BusOp.READ, 0x0)], parent=top
            )
            h1 = MasterHarness(
                "m1", xbar.master_port(1), [BusRequest(1, BusOp.READ, 0x4)], parent=top
            )
            return xbar, h0, h1

        sim, _ = run_platform(build)
        assert sim.now >= 200

    def test_decode_error_completes(self):
        def build(top):
            xbar = Crossbar("xbar", period=10, parent=top)
            xbar.attach_slave("a", 0x0, 0x100, ScratchSlave())
            harness = MasterHarness(
                "m0", xbar.master_port(0), [BusRequest(0, BusOp.READ, 0xF000)],
                parent=top,
            )
            return xbar, harness

        _, (xbar, harness) = run_platform(build)
        assert harness.responses[0].status is ResponseStatus.DECODE_ERROR
        assert xbar.stats.decode_errors == 1

    def test_channel_stats(self):
        def build(top):
            xbar = Crossbar("xbar", period=10, parent=top)
            xbar.attach_slave("a", 0x0, 0x100, ScratchSlave())
            xbar.attach_slave("b", 0x1000, 0x100, ScratchSlave())
            harness = MasterHarness(
                "m0",
                xbar.master_port(0),
                [BusRequest(0, BusOp.READ, 0x0), BusRequest(0, BusOp.READ, 0x1000)],
                parent=top,
            )
            return xbar, harness

        _, (xbar, _) = run_platform(build)
        stats = xbar.channel_stats()
        assert stats["a"]["transactions"] == 1
        assert stats["b"]["transactions"] == 1


class TestBusMonitor:
    def test_monitor_is_transparent_and_records(self):
        def build(top):
            bus = SharedBus("bus", period=10, arbitration_cycles=0, parent=top)
            slave = ScratchSlave(cycles=2)
            monitor = BusMonitor(slave, name="probe")
            bus.attach_slave("ram", 0x0, 0x100, monitor)
            port = bus.master_port(0)
            script = [
                BusRequest(0, BusOp.WRITE, 0x8, data=5, tag="store"),
                BusRequest(0, BusOp.READ, 0x8, tag="load"),
            ]
            harness = MasterHarness("m0", port, script, parent=top)
            return slave, monitor, harness

        _, (slave, monitor, harness) = run_platform(build)
        assert harness.responses[1].data == 5
        assert monitor.transaction_count == 2
        assert monitor.op_counts[BusOp.WRITE] == 1
        assert monitor.average_latency() == pytest.approx(2.0)
        assert monitor.histogram_by_tag() == {"store": 1, "load": 1}
        # The monitored latency must match the slave's configured latency.
        assert all(t.cycles == 2 for t in monitor.transfers)


class TestBusRequestValidation:
    def test_bad_size(self):
        with pytest.raises(ValueError):
            BusRequest(0, BusOp.READ, 0x0, size=3)

    def test_negative_address(self):
        with pytest.raises(ValueError):
            BusRequest(0, BusOp.READ, -4)

    def test_word_count(self):
        assert BusRequest(0, BusOp.READ, 0).word_count == 1
        assert BusRequest(0, BusOp.READ, 0, burst_length=7).word_count == 7
        assert BusRequest(0, BusOp.WRITE, 0, burst_data=[1, 2]).word_count == 2

    def test_describe(self):
        text = BusRequest(1, BusOp.WRITE, 0x40, burst_data=[1, 2, 3]).describe()
        assert "burst" in text and "m1" in text
