"""Feature rules under partitioning: what runs, what is rejected, and why.

Reserve/release atomicity is only sound inside one event loop: two
partitions racing a lock through latency-paying boundary links could both
observe it free.  The partitioned NoC therefore refuses to carry a memory
lock command across a cut — contenders for a lock must be co-located with
the memory that holds it.
"""

import pytest

from repro.api import PlatformBuilder, Scenario, run_scenario
from repro.noc.partitioned import PartitionError


def handoff_scenario(*, pe_nodes, memory_nodes, partitions=2):
    config = (PlatformBuilder().pes(2).wrapper_memories(len(memory_nodes))
              .mesh(4, 4, pe_nodes=pe_nodes, memory_nodes=memory_nodes)
              .partitions(partitions).build())
    return Scenario(name="handoff", config=config,
                    workload="stress_locked_handoff",
                    params={"words": 16}, seed=3)


def test_cross_cut_lock_commands_are_rejected():
    # Both PEs in the top half, their lock-guarded memory in the bottom:
    # the producer's RESERVE would cross the cut.
    result = run_scenario(handoff_scenario(
        pe_nodes=(0, 1), memory_nodes=(15,)))
    assert result.error is not None
    assert "reserve" in result.error.lower()


def test_co_located_lock_contenders_run_fine():
    # Same workload, memory in the same half as both PEs: no cut crossed.
    result = run_scenario(handoff_scenario(
        pe_nodes=(0, 1), memory_nodes=(5,)))
    assert result.error is None, result.error
    assert result.passed, result.failures
    assert result.report.pdes["boundary_messages"] == 0


def test_partition_error_is_raised_from_the_noc_layer():
    """The rejection happens at emit time with a pointed message (unit
    check, no worker processes involved)."""
    from repro.pdes import run_partitioned

    with pytest.raises(Exception) as excinfo:
        run_partitioned(handoff_scenario(pe_nodes=(0, 1),
                                         memory_nodes=(15,)),
                        mode="inprocess")
    # The kernel wraps process exceptions in its ProcessError; the
    # PartitionError diagnosis must survive in the message.
    message = str(excinfo.value)
    assert PartitionError.__name__ in message
    assert "cross-partition reserve/release" in message


def test_plain_cross_cut_reads_and_writes_are_allowed():
    """Only lock commands are special: ordinary loads/stores cross cuts."""
    config = (PlatformBuilder().pes(4).wrapper_memories(1)
              .mesh(4, 4, pe_nodes=(0, 2, 8, 10), memory_nodes=(15,))
              .partitions(2).build())
    result = run_scenario(Scenario(
        name="cross-rw", config=config, workload="fir",
        params={"num_samples": 16}, seed=2))
    assert result.error is None, result.error
    assert result.passed, result.failures
    assert result.report.pdes["boundary_messages"] > 0
