"""Partition planning: tiling geometry, ownership, config validation."""

import dataclasses

import pytest

from repro.api import BuilderError, PlatformBuilder
from repro.cache.geometry import CacheConfig
from repro.check.config import CheckConfig
from repro.pdes import DEFAULT_EPOCH_CYCLES, PartitionError, plan_partitions
from repro.soc.config import PlatformConfig


def mesh_config(rows, cols, partitions, *, num_pes=4, num_memories=4,
                **kwargs):
    builder = (PlatformBuilder().pes(num_pes)
               .wrapper_memories(num_memories).mesh(rows, cols, **kwargs))
    if partitions > 1:
        builder = builder.partitions(partitions)
    return builder.build()


def test_8x8_four_partitions_are_quadrants():
    plan = plan_partitions(mesh_config(8, 8, 4))
    assert plan.partitions == 4 and plan.rows == plan.cols == 8
    for node in range(64):
        row, col = divmod(node, 8)
        quadrant = (row // 4) * 2 + (col // 4)
        assert plan.node_owner[node] == quadrant, f"node {node}"


def test_4x4_two_partitions_are_halves():
    plan = plan_partitions(mesh_config(4, 4, 2))
    for node in range(16):
        assert plan.node_owner[node] == (0 if node < 8 else 1)


def test_bisection_is_nested():
    """Every 2-partition tile is a union of 4-partition tiles, so a
    placement that is cut-free at 4 partitions is cut-free at 2."""
    two = plan_partitions(mesh_config(4, 4, 2))
    four = plan_partitions(mesh_config(4, 4, 4))
    refinement = {}
    for node in range(16):
        coarse, fine = two.node_owner[node], four.node_owner[node]
        assert refinement.setdefault(fine, coarse) == coarse, (
            f"4-partition tile {fine} straddles a 2-partition cut"
        )


def test_pe_and_memory_ownership_follow_placement():
    plan = plan_partitions(mesh_config(
        4, 4, 4, pe_nodes=(0, 2, 8, 10), memory_nodes=(5, 7, 13, 15)))
    assert plan.pe_owner == (0, 1, 2, 3)
    assert plan.memory_owner == (0, 1, 2, 3)
    assert plan.pes_of(2) == (2,)
    assert plan.memories_of(3) == (3,)
    assert plan.nodes_of(0) == frozenset({0, 1, 4, 5})


def test_default_epoch_covers_hop_latency():
    plan = plan_partitions(mesh_config(4, 4, 2))
    assert plan.epoch_cycles >= DEFAULT_EPOCH_CYCLES
    explicit = plan_partitions(dataclasses.replace(
        mesh_config(4, 4, 2), pdes_epoch_cycles=17))
    assert explicit.epoch_cycles == 17


def test_unsplittable_mesh_raises():
    config = mesh_config(1, 4, 8, num_pes=2, num_memories=1)
    with pytest.raises(PartitionError, match="cannot be split"):
        plan_partitions(config)


def test_non_mesh_config_is_rejected():
    with pytest.raises(ValueError, match="requires InterconnectKind.MESH"):
        PlatformConfig(num_pes=2, num_memories=1, partitions=2)


def test_partition_count_must_be_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        dataclasses.replace(mesh_config(4, 4, 2), partitions=3)
    with pytest.raises(BuilderError, match="power of two"):
        PlatformBuilder().partitions(6)


def test_unsupported_features_are_rejected_eagerly():
    base = mesh_config(4, 4, 2)
    with pytest.raises(ValueError, match="MSI snooping"):
        dataclasses.replace(base, cache=CacheConfig())
    with pytest.raises(ValueError, match="race detector"):
        dataclasses.replace(base, check=CheckConfig())
    with pytest.raises(ValueError, match="idle"):
        dataclasses.replace(base, idle_tick_memories=True)


def test_describe_mentions_partitioning():
    assert "pdes[2p" in mesh_config(4, 4, 2).describe()
    assert "pdes" not in mesh_config(4, 4, 1).describe()


def test_partitions_is_a_sweep_axis():
    from repro.api import ExperimentRunner, scenario_grid

    base = mesh_config(4, 4, 1, pe_nodes=(0, 2, 8, 10),
                       memory_nodes=(5, 7, 13, 15))
    grid = scenario_grid("axis", base, "fir",
                         config_grid={"partitions": [1, 2]},
                         params={"num_samples": 16}, seed=2)
    assert [s.config.partitions for s in grid] == [1, 2]
    results = ExperimentRunner(grid).run()
    for result in results:
        result.raise_for_status()
    assert (results[0].report.results == results[1].report.results)


def test_partitions_must_run_through_coordinator():
    from repro.soc.platform import Platform

    platform = Platform(mesh_config(4, 4, 2))
    with pytest.raises(RuntimeError, match="run_partitioned"):
        platform.run()
