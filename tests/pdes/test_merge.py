"""Unit tests of the statistics-merge helpers on synthetic payloads."""

from array import array

from repro.fabric.stats import BusStats, percentile_summary
from repro.noc.stats import NocStats
from repro.pdes.merge import (
    merge_bus_stats,
    merge_grant_counts,
    merge_kernel_stats,
    merge_latencies,
    merge_noc_stats,
)
from repro.pdes.partition import PartitionPayload


def payload(index, **overrides):
    base = dict(index=index, pes=(index,), memories=(index,),
                simulated_time=1000 * (index + 1),
                kernel_stats={}, wallclock_seconds=0.0,
                boundary_sent=0, boundary_received=0)
    base.update(overrides)
    return PartitionPayload(**base)


def bus(transactions, per_master):
    stats = BusStats()
    stats.transactions = transactions
    stats.busy_cycles = transactions * 3
    for master_id, count in per_master.items():
        entry = stats.master(master_id)
        entry.transactions = count
        entry.reads = count // 2
        entry.writes = count - count // 2
        entry.words = count * 4
        entry.busy_cycles = count * 3
        entry.wait_cycles = count
    return stats


def test_kernel_counters_sum_and_end_time_is_max():
    merged = merge_kernel_stats([
        {"delta_cycles": 10, "timed_steps": 4, "process_activations": 20,
         "events_fired": 8, "wallclock_seconds": 0.5, "end_time": 900},
        {"delta_cycles": 7, "timed_steps": 6, "process_activations": 11,
         "events_fired": 5, "wallclock_seconds": 0.25, "end_time": 1200},
    ])
    assert merged["delta_cycles"] == 17
    assert merged["timed_steps"] == 10
    assert merged["process_activations"] == 31
    assert merged["events_fired"] == 13
    assert merged["wallclock_seconds"] == 0.75
    assert merged["end_time"] == 1200


def test_bus_stats_sum_without_double_counting():
    merged = merge_bus_stats([
        payload(0, bus_stats=bus(10, {0: 6, 1: 4})),
        payload(1, bus_stats=bus(5, {2: 5})),
    ])
    assert merged.transactions == 15
    assert merged.busy_cycles == 45
    assert sorted(merged.per_master) == [0, 1, 2]
    assert merged.per_master[0].transactions == 6
    assert merged.per_master[2].words == 20
    # Per-master totals reconcile with the channel total: nothing was
    # counted twice across partitions.
    assert sum(m.transactions for m in merged.per_master.values()) == 15


def test_percentiles_of_concatenated_latencies_are_exact():
    first = array("q", [10, 20, 30])
    second = array("q", [40, 50, 60, 70])
    merged = merge_latencies([payload(0, latencies=first),
                              payload(1, latencies=second)])
    assert list(merged) == [10, 20, 30, 40, 50, 60, 70]
    everything = array("q", list(first) + list(second))
    assert percentile_summary(merged) == percentile_summary(everything)


def test_grant_counts_sum_across_shared_servers():
    merged = merge_grant_counts([
        payload(0, grant_counts={0: 3, 1: 2}),
        payload(1, grant_counts={1: 5, 2: 1}),
    ])
    assert merged == {0: 3, 1: 7, 2: 1}


def test_noc_links_merge_by_name():
    first = NocStats()
    first.link("n0->n1").busy_cycles = 12
    first.link("n0->n1").flits = 3
    first.router_contention[0] = 2
    first.packets_sent = 5
    second = NocStats()
    second.link("n0->n1").busy_cycles = 8
    second.link("n2->n3").packets = 4
    second.router_contention[0] = 1
    second.router_contention[3] = 7
    second.packets_sent = 2
    merged = merge_noc_stats([payload(0, noc_stats=first),
                              payload(1, noc_stats=second)])
    assert merged.link("n0->n1").busy_cycles == 20
    assert merged.link("n0->n1").flits == 3
    assert merged.link("n2->n3").packets == 4
    assert merged.router_contention == {0: 3, 3: 7}
    assert merged.packets_sent == 7
    assert merged.total_busy_cycles() == first.total_busy_cycles() + \
        second.total_busy_cycles()
