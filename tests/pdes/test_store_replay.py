"""Result-store compatibility of partitioned runs.

The partition count is execution strategy, not simulated hardware, so it
is excluded from the scenario content key: a warm store filled by a
sequential sweep replays for the same scenarios run partitioned (and vice
versa) — but only runs that were provably bit-identical to sequential
(zero boundary messages) are allowed to *fill* the store.
"""

import dataclasses

from repro.api import ExperimentRunner, PlatformBuilder, Scenario
from repro.store import ResultStore, scenario_key

CUT_FREE = dict(pe_nodes=(0, 2, 8, 10), memory_nodes=(5, 7, 13, 15))


def scenario(partitions, *, num_memories=4, **mesh_kwargs):
    builder = (PlatformBuilder().pes(4).wrapper_memories(num_memories)
               .mesh(4, 4, **mesh_kwargs))
    if partitions > 1:
        builder = builder.partitions(partitions)
    return Scenario(name="pdes-store", config=builder.build(),
                    workload="fir", params={"num_samples": 32}, seed=4)


def test_partition_count_is_excluded_from_the_key():
    keys = {scenario_key(scenario(p, **CUT_FREE)) for p in (1, 2, 4)}
    assert len(keys) == 1
    explicit_epoch = dataclasses.replace(
        scenario(2, **CUT_FREE).config, pdes_epoch_cycles=128)
    assert scenario_key(dataclasses.replace(
        scenario(2, **CUT_FREE), config=explicit_epoch)) == keys.pop()


def test_warm_sequential_store_replays_for_partitioned_runs(tmp_path):
    store = ResultStore(str(tmp_path / "s.sqlite"))
    cold = ExperimentRunner([scenario(1, **CUT_FREE)], store=store).run()
    assert not cold[0].cached and cold[0].error is None
    assert store.stats["puts"] == 1
    warm = ExperimentRunner([scenario(2, **CUT_FREE)], store=store).run()
    assert warm[0].cached
    assert store.stats["puts"] == 1  # no re-simulation, no new row
    assert warm[0].report.results == cold[0].report.results


def test_cut_free_partitioned_run_fills_the_store(tmp_path):
    store = ResultStore(str(tmp_path / "s.sqlite"))
    cold = ExperimentRunner([scenario(4, **CUT_FREE)], store=store).run()
    assert cold[0].error is None and cold[0].report.pdes is not None
    assert cold[0].report.pdes["boundary_messages"] == 0
    assert store.stats["puts"] == 1
    warm = ExperimentRunner([scenario(1, **CUT_FREE)], store=store).run()
    assert warm[0].cached  # the partitioned row replays sequentially too


def test_cross_traffic_partitioned_run_is_never_cached(tmp_path):
    store = ResultStore(str(tmp_path / "s.sqlite"))
    crossing = scenario(2, num_memories=1, pe_nodes=(0, 2, 8, 10),
                        memory_nodes=(15,))
    first = ExperimentRunner([crossing], store=store).run()
    assert first[0].error is None
    assert first[0].report.pdes["boundary_messages"] > 0
    assert store.stats["puts"] == 0  # timing depends on the tiling
    second = ExperimentRunner([crossing], store=store).run()
    assert not second[0].cached
