"""Partitioned-vs-sequential bit-identity and run-to-run determinism.

The conservative PDES mode promises two distinct guarantees, tested
separately:

* **partition-local traffic is bit-identical to sequential** — when every
  PE only talks to memories inside its own tile (the cut-free placement
  below), the partitioned run must reproduce the sequential results, end
  time, per-master fabric counters, latency percentiles and per-link NoC
  counters exactly;
* **cross-partition traffic is still deterministic** — boundary crossings
  pay the modelled cut latency (so timing differs from sequential by
  design), but the run is a pure function of the scenario: re-running it,
  or running it in-process instead of across worker processes, produces
  the identical report.
"""

import pytest

from repro.api import PlatformBuilder, Scenario, run_scenario
from repro.pdes import run_partitioned

#: Cut-free placement on a 4x4 mesh: one PE + one memory per quadrant,
#: and fir stripes PE i onto memory i (i % num_memories), so with XY
#: routing no packet ever leaves its quadrant — at 4 partitions
#: (quadrants) or 2 (halves, unions of quadrants by nested bisection).
CUT_FREE = dict(pe_nodes=(0, 2, 8, 10), memory_nodes=(5, 7, 13, 15))


def scenario(partitions, *, num_memories=4, epoch_cycles=None, **mesh_kwargs):
    builder = (PlatformBuilder().pes(4).wrapper_memories(num_memories)
               .mesh(4, 4, **mesh_kwargs))
    if partitions > 1:
        builder = builder.partitions(partitions, epoch_cycles=epoch_cycles)
    return Scenario(name=f"pdes-{partitions}", config=builder.build(),
                    workload="fir", params={"num_samples": 48}, seed=11)


def run(partitions, **kwargs):
    result = run_scenario(scenario(partitions, **kwargs))
    assert result.error is None, result.error
    assert result.passed, result.failures
    return result.report


#: Host-time fields — the only legitimately nondeterministic ones.
_HOST_TIME_KEYS = ("wallclock_seconds", "host_seconds", "simulation_speed")


def strip_wallclock(value):
    """Recursively drop host-time fields (the only nondeterministic ones)."""
    if isinstance(value, dict):
        return {key: strip_wallclock(item) for key, item in value.items()
                if key not in _HOST_TIME_KEYS}
    if isinstance(value, list):
        return [strip_wallclock(item) for item in value]
    return value


@pytest.fixture(scope="module")
def sequential():
    return run(1, **CUT_FREE)


@pytest.mark.parametrize("partitions", [2, 4])
def test_cut_free_run_is_bit_identical_to_sequential(sequential, partitions):
    report = run(partitions, **CUT_FREE)
    assert report.pdes["boundary_messages"] == 0
    assert report.results == sequential.results
    assert report.finished == sequential.finished
    assert report.simulated_time == sequential.simulated_time
    assert (report.kernel_stats["events_fired"]
            == sequential.kernel_stats["events_fired"])
    mine, theirs = report.interconnect_stats, sequential.interconnect_stats
    assert mine["per_master"] == theirs["per_master"]
    assert mine["transactions"] == theirs["transactions"]
    assert mine["latency_percentiles"] == theirs["latency_percentiles"]
    assert mine["arbitration"] == theirs["arbitration"]
    assert mine["noc"] == theirs["noc"]


def test_cross_partition_traffic_is_correct_and_counted(sequential):
    """All four PEs hammer one memory across the cuts: workload results
    stay correct (timing-independent), boundary traffic is visible."""
    report = run(2, num_memories=1, pe_nodes=(0, 2, 8, 10),
                 memory_nodes=(15,))
    baseline = run(1, num_memories=1, pe_nodes=(0, 2, 8, 10),
                   memory_nodes=(15,))
    assert report.results == baseline.results
    assert report.pdes["boundary_messages"] > 0
    # Cut crossings pay the epoch latency, so the partitioned run's clock
    # is ahead of (never behind) the sequential one.
    assert report.simulated_time >= baseline.simulated_time


@pytest.mark.parametrize("partitions", [2, 4])
def test_cross_partition_run_to_run_identity(partitions):
    kwargs = dict(num_memories=1, epoch_cycles=32,
                  pe_nodes=(0, 2, 8, 10), memory_nodes=(15,))
    first = run(partitions, **kwargs)
    second = run(partitions, **kwargs)
    assert strip_wallclock(first.as_dict()) == strip_wallclock(
        second.as_dict())


def test_inprocess_mode_matches_process_mode():
    sc = scenario(2, num_memories=1, epoch_cycles=32,
                  pe_nodes=(0, 2, 8, 10), memory_nodes=(15,))
    in_process = run_partitioned(sc, mode="inprocess")
    across = run_partitioned(sc, mode="process")
    assert in_process.pdes["mode"] == "inprocess"
    assert across.pdes["mode"] == "process"
    first = strip_wallclock(in_process.as_dict())
    second = strip_wallclock(across.as_dict())
    first["pdes"].pop("mode")
    second["pdes"].pop("mode")
    assert first == second


def test_max_time_expiry_matches_sequential():
    """A deadline that cuts the workload short pads all partitions'
    clocks to it, exactly like sequential sc_start."""
    base = scenario(1, **CUT_FREE)
    seq = run_scenario(Scenario(
        name="seq-cut", config=base.config, workload="fir",
        params={"num_samples": 48}, seed=11, max_time=100_000,
        expect_finished=False))
    par = run_scenario(Scenario(
        name="par-cut", config=scenario(2, **CUT_FREE).config,
        workload="fir", params={"num_samples": 48}, seed=11,
        max_time=100_000, expect_finished=False))
    assert par.error is None, par.error
    assert par.report.simulated_time == seq.report.simulated_time == 100_000
    assert par.report.finished == seq.report.finished
