"""Sanitizers must be timing- and schedule-transparent.

The acceptance bar of ``repro.check``: a sanitized run reaches exactly
the same simulated time and kernel counters as the unsanitized run of
the same scenario (only host wall-clock may differ) — and the default
``check=None`` platform stays bit-identical to the pre-sanitizer model
(the golden scheduler-counter gate in ``tests/perf`` covers that side).
"""

import pytest

import repro.sw.catalog  # noqa: F401  (registers the workloads)
from repro.api import PlatformBuilder, run_tasks
from repro.sw.registry import workload

#: Golden kernel counters that must not move when sanitizers attach.
COUNTERS = ("delta_cycles", "timed_steps", "process_activations",
            "events_fired")


def _builder(kind):
    builder = PlatformBuilder().pes(2).wrapper_memories(1)
    if kind == "crossbar":
        builder = builder.crossbar()
    elif kind == "mesh":
        builder = builder.mesh()
    return builder


def _run(builder, name, sanitize, **params):
    if sanitize:
        builder = builder.sanitize()
    config = builder.build()
    inst = workload.create(name, config, **params)
    return run_tasks(config, inst.tasks)


@pytest.mark.parametrize("kind", ["shared_bus", "crossbar", "mesh"])
def test_sanitizers_do_not_perturb_simulated_time(kind):
    off = _run(_builder(kind), "producer_consumer", False,
               num_items=8, seed=3)
    on = _run(_builder(kind), "producer_consumer", True,
              num_items=8, seed=3)
    assert on.simulated_time == off.simulated_time
    for counter in COUNTERS:
        assert on.kernel_stats[counter] == off.kernel_stats[counter], counter
    assert on.results == off.results


def test_sanitizers_transparent_with_devices_and_caches():
    def builder():
        return (PlatformBuilder().pes(2).wrapper_memories(2).dma(2)
                .l1_cache(sets=8, ways=2, line_bytes=16))

    off = _run(builder(), "stress_dma_copy", False, words=32, seed=5)
    on = _run(builder(), "stress_dma_copy", True, words=32, seed=5)
    assert on.simulated_time == off.simulated_time
    for counter in COUNTERS:
        assert on.kernel_stats[counter] == off.kernel_stats[counter], counter
    assert on.results == off.results
    assert on.sanitizer_reports == []  # the clean variant stays clean
