"""Protocol-checker tests: lock leaks, reentry, lifecycle, register misuse."""

from repro.api import PlatformBuilder, run_tasks
from repro.check.protocol import ProtocolChecker
from repro.check.report import AccessSite, ReportSink
from repro.memory import DataType
from repro.memory.protocol import REG_STATUS


def _site(master, op, time=0):
    return AccessSite(master=master, op=op, time=time, mem_index=0,
                      vptr=0x100)


def _checker():
    return ProtocolChecker(ReportSink(max_reports=16))


KEY = (0, 1)


def test_lock_leak_reported_at_finish():
    checker = _checker()
    checker.reserved(KEY, "pe0", 0x100, _site("pe0", "reserve"))
    checker.finish(now=12345)
    [report] = checker.sink.reports
    assert report.checker == "lock-leak"
    assert "pe0" in report.message and "missing release" in report.message
    assert report.sites[0].op == "reserve"
    assert checker.lock_leaks == 1


def test_release_clears_the_leak():
    checker = _checker()
    checker.reserved(KEY, "pe0", 0x100, _site("pe0", "reserve"))
    checker.released(KEY)
    checker.finish(now=1)
    assert checker.sink.reports == []


def test_reserve_reentry_reports_both_sites():
    checker = _checker()
    checker.reserved(KEY, "pe0", 0x100, _site("pe0", "reserve", time=10))
    checker.reserved(KEY, "pe0", 0x100, _site("pe0", "reserve", time=20))
    [report] = checker.sink.reports
    assert report.checker == "reserve-reentry"
    assert [site.time for site in report.sites] == [10, 20]


def test_reserve_handoff_between_masters_is_not_reentry():
    checker = _checker()
    checker.reserved(KEY, "pe0", 0x100, _site("pe0", "reserve"))
    checker.released(KEY)
    checker.reserved(KEY, "pe1", 0x100, _site("pe1", "reserve"))
    assert checker.sink.reports == []


def test_port_lifecycle_double_issue_and_orphan_complete():
    checker = _checker()
    port = object()
    checker.port_issued(port, "pe0", time=0)
    checker.port_issued(port, "pe0", time=5)
    assert checker.lifecycle_violations == 1
    checker.port_completed(port, "pe0", time=6)
    checker.port_completed(port, "pe0", time=7)
    assert checker.lifecycle_violations == 1  # both were issued
    checker.port_completed(port, "pe0", time=8)
    assert checker.lifecycle_violations == 2  # never issued
    kinds = [r.checker for r in checker.sink.reports]
    assert kinds == ["port-lifecycle", "port-lifecycle"]


# -- platform integration ------------------------------------------------------------
def _sanitized(num_pes=1):
    return (PlatformBuilder().pes(num_pes).wrapper_memories(1)
            .sanitize().build())


def test_platform_reports_reserve_held_at_end():
    def leaker(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(4, DataType.UINT32)
        yield from smem.reserve(vptr)  # noqa: RC004 — the planted bug
        return vptr  # finishes while still holding the reservation

    report = run_tasks(_sanitized(), [leaker])
    leaks = [r for r in report.sanitizer_reports
             if r["checker"] == "lock-leak"]
    assert len(leaks) == 1
    assert "pe0" in leaks[0]["message"]
    # The site points into the workload.
    names = [frame[2] for frame in leaks[0]["sites"][0]["traceback"]]
    assert "leaker" in names


def test_platform_reports_write_to_readonly_register():
    def misuser(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(4, DataType.UINT32)
        # REG_STATUS is a documented read-only wrapper register.
        base = smem.base_address
        yield from ctx.port.write(base + REG_STATUS, 0xDEAD)
        yield from smem.free(vptr)
        return 0

    report = run_tasks(_sanitized(), [misuser])
    misuses = [r for r in report.sanitizer_reports
               if r["checker"] == "register-misuse"]
    assert len(misuses) == 1
    assert "read-only" in misuses[0]["message"]


def test_platform_reports_subword_register_access():
    def misuser(ctx):
        smem = ctx.smem(0)
        base = smem.base_address
        yield from ctx.port.write(base + REG_STATUS, 1, size=2)
        return 0

    report = run_tasks(_sanitized(), [misuser])
    misuses = [r for r in report.sanitizer_reports
               if r["checker"] == "register-misuse"]
    assert len(misuses) == 1
    assert "word-access only" in misuses[0]["message"]


def test_platform_clean_run_has_no_protocol_findings():
    def polite(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(4, DataType.UINT32)
        yield from smem.reserve(vptr)
        yield from smem.write_array(vptr, [1, 2, 3, 4])
        yield from smem.release(vptr)
        yield from smem.free(vptr)
        return 0

    report = run_tasks(_sanitized(), [polite])
    assert report.sanitizer_reports == []
