"""Race-detector tests: unit-level state machine plus platform runs."""

import pytest

from repro.api import PlatformBuilder, run_tasks
from repro.check.race import RaceDetector
from repro.check.report import AccessSite, ReportSink
from repro.memory import DataType


def _site(master, op, element=-1, time=0):
    return AccessSite(master=master, op=op, time=time, mem_index=0,
                      vptr=0x100, element=element)


@pytest.fixture
def detector():
    detector = RaceDetector(ReportSink(max_reports=16))
    detector.register_actor(0, "pe0")
    detector.register_actor(1, "pe1")
    return detector


KEY = (0, 1)  # (mem_index, alloc uid)


def test_plain_write_write_race(detector):
    detector.begin_op(0)
    detector.plain_write(0, KEY, [0, 1], _site("pe0", "array write"))
    detector.begin_op(1)
    detector.plain_write(1, KEY, [0, 1], _site("pe1", "array write"))
    [report] = detector.sink.reports
    assert report.checker == "data-race"
    assert len(report.sites) == 2
    assert {site.master for site in report.sites} == {"pe0", "pe1"}
    # Identical conflicting epochs are deduplicated (element 1 is the
    # same unordered pair as element 0).
    assert detector.races == 1


def test_plain_read_write_race(detector):
    detector.begin_op(0)
    detector.plain_write(0, KEY, [3], _site("pe0", "array write", 3))
    detector.begin_op(1)
    detector.plain_read(1, KEY, [3], _site("pe1", "array read", 3))
    assert detector.races == 1
    # Two plain reads of the same word do not race each other.
    detector.begin_op(0)
    races_before = detector.races
    detector.plain_read(0, KEY, [3], _site("pe0", "array read", 3))
    assert detector.races == races_before


def test_lock_orders_accesses(detector):
    detector.begin_op(0)
    detector.plain_write(0, KEY, [0], _site("pe0", "array write", 0))
    detector.release(0, KEY)
    detector.begin_op(1)
    detector.acquire(1, KEY)
    detector.plain_read(1, KEY, [0], _site("pe1", "array read", 0))
    assert detector.races == 0


def test_atomic_flag_orders_plain_accesses(detector):
    # The wait_flag idiom: plain writes, then a scalar flag write; the
    # reader polls the flag (acquire) and then reads the payload.
    detector.begin_op(0)
    detector.plain_write(0, KEY, [1], _site("pe0", "array write", 1))
    detector.begin_op(0)
    detector.atomic_write(0, KEY, 0, _site("pe0", "write", 0))
    detector.begin_op(1)
    detector.atomic_read(1, KEY, 0, _site("pe1", "read", 0))
    detector.plain_read(1, KEY, [1], _site("pe1", "array read", 1))
    assert detector.races == 0


def test_unordered_atomic_does_not_bless_earlier_reader(detector):
    # Reader reads the payload BEFORE acquiring the flag: still a race.
    detector.begin_op(1)
    detector.plain_read(1, KEY, [1], _site("pe1", "array read", 1))
    detector.begin_op(0)
    detector.plain_write(0, KEY, [1], _site("pe0", "array write", 1))
    assert detector.races == 1


def test_free_races_with_unordered_access(detector):
    detector.begin_op(0)
    detector.plain_write(0, KEY, [0], _site("pe0", "array write", 0))
    detector.begin_op(1)
    detector.free_alloc(1, KEY, _site("pe1", "free"))
    assert detector.races == 1
    # The allocation's state is gone afterwards.
    assert KEY not in detector.words


def test_irq_edge_orders_accesses(detector):
    detector.begin_op(0)
    detector.plain_write(0, KEY, [0], _site("pe0", "array write", 0))
    detector.irq_raised([4], raiser=0, controller_base=None)
    detector.irq_claimed(1, [4])
    detector.begin_op(1)
    detector.plain_read(1, KEY, [0], _site("pe1", "array read", 0))
    assert detector.races == 0


def test_kernel_event_edge_only_for_registered_actors(detector):
    event = object()
    # An unregistered notifier must not create an edge.
    detector.kernel_notify("not-an-actor", event)
    detector.kernel_wake(1, event)
    detector.begin_op(0)
    detector.plain_write(0, KEY, [0], _site("pe0", "array write", 0))
    detector.begin_op(1)
    detector.plain_read(1, KEY, [0], _site("pe1", "array read", 0))
    assert detector.races == 1


# -- platform integration ------------------------------------------------------------
def test_platform_reports_planted_race_with_both_sites():
    shared = {}

    def writer(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(8, DataType.UINT32)
        shared["vptr"] = vptr
        yield from smem.write_array(vptr, list(range(8)))
        yield from ctx.compute(50)
        return 0

    def racer(ctx):
        smem = ctx.smem(0)
        while "vptr" not in shared:
            yield from ctx.compute(5)
        # Host-dict handoff carries no simulated synchronisation: racy.
        yield from smem.write_array(shared["vptr"], [9] * 8)
        return 1

    config = PlatformBuilder().pes(2).wrapper_memories(1).sanitize().build()
    report = run_tasks(config, [writer, racer])
    races = [r for r in report.sanitizer_reports if r["checker"] == "data-race"]
    assert len(races) == 1
    [race] = races
    sites = race["sites"]
    assert {site["master"] for site in sites} == {"pe0", "pe1"}
    # Both sites carry a workload traceback naming the task function.
    names = [frame[2] for site in sites for frame in site["traceback"]]
    assert "writer" in names and "racer" in names
    # ...and the simulated time of each access.
    assert all(site["time"] > 0 for site in sites)


def test_platform_clean_producer_consumer_has_no_reports():
    import repro.sw.catalog  # noqa: F401  (registers the workloads)
    from repro.sw.registry import workload

    config = PlatformBuilder().pes(2).wrapper_memories(1).sanitize().build()
    inst = workload.create("producer_consumer", config, num_items=8, seed=1)
    report = run_tasks(config, inst.tasks)
    assert report.sanitizer_reports == []
    assert report.all_pes_finished


def test_report_cap_and_meta_entry():
    shared = {}

    def writer(ctx):
        smem = ctx.smem(0)
        vptrs = []
        for _ in range(4):
            vptr = yield from smem.alloc(4, DataType.UINT32)
            yield from smem.write_array(vptr, [1] * 4)
            vptrs.append(vptr)
        shared["vptrs"] = vptrs
        yield from ctx.compute(50)
        return 0

    def racer(ctx):
        smem = ctx.smem(0)
        while "vptrs" not in shared:
            yield from ctx.compute(3)
        # One distinct race pair per allocation: four findings, cap two.
        for vptr in shared["vptrs"]:
            yield from smem.write_array(vptr, [2] * 4)
        return 1

    config = (PlatformBuilder().pes(2).wrapper_memories(1)
              .sanitize(max_reports=2).build())
    report = run_tasks(config, [writer, racer])
    assert len(report.sanitizer_reports) == 3  # 2 reports + the meta entry
    meta = report.sanitizer_reports[-1]
    assert meta["checker"] == "meta"
