"""Unit tests of the vector-clock primitive behind the race detector."""

from repro.check.vclock import VectorClock


def test_tick_increments_own_component():
    vc = VectorClock()
    assert vc.tick("a") == 1
    assert vc.tick("a") == 2
    assert vc["a"] == 2
    assert vc.get("b", 0) == 0


def test_epoch_and_ordering():
    vc = VectorClock()
    vc.tick("a")
    epoch = vc.epoch("a")
    assert epoch == ("a", 1)
    # The writer itself is ordered after its own epoch.
    assert vc.ordered_before(epoch)
    # A fresh clock has not seen the epoch.
    assert not VectorClock().ordered_before(epoch)
    # None is trivially ordered (no prior access).
    assert VectorClock().ordered_before(None)


def test_join_is_pointwise_max():
    a = VectorClock()
    b = VectorClock()
    a.tick("x")
    a.tick("x")
    b.tick("x")
    b.tick("y")
    b.join(a)
    assert b["x"] == 2
    assert b["y"] == 1
    # Join makes the epoch visible.
    assert b.ordered_before(("x", 2))


def test_copy_is_independent():
    vc = VectorClock()
    vc.tick("a")
    clone = vc.copy()
    vc.tick("a")
    assert clone["a"] == 1
    assert vc["a"] == 2


def test_transitive_ordering_via_intermediate():
    # a -> lock -> b gives b knowledge of a's epoch (release/acquire).
    a, lock, b = VectorClock(), VectorClock(), VectorClock()
    a.tick("a")
    lock.join(a)          # release
    b.join(lock)          # acquire
    assert b.ordered_before(("a", 1))
