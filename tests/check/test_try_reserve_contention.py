"""``try_reserve`` under real multi-master contention, with sanitizers on.

Four PEs hammer one shared counter, each incrementing it only inside a
``try_reserve``/``release`` critical section.  The lock discipline must
make the final count exact (no lost updates), the sanitizers must stay
silent, and a PE that wins the lock but never releases must be caught.
"""

from repro.api import PlatformBuilder, run_tasks
from repro.memory import DataType

NUM_PES = 4
INCREMENTS = 8

#: try_reserve attempts before a contender gives up (bounds the run when
#: another PE leaks the lock).
MAX_ATTEMPTS = 600


def make_incrementer(shared, owner=False, increments=INCREMENTS,
                     leak=False):
    def task(ctx):
        smem = ctx.smem(0)
        if owner:
            vptr = yield from smem.alloc(1, DataType.UINT32)
            yield from smem.reserve(vptr)
            yield from smem.write(vptr, 0)
            yield from smem.release(vptr)
            shared["vptr"] = vptr
        while "vptr" not in shared:
            # Host-dict spin: carries no simulated synchronisation, which
            # is fine — every counter access below is lock-ordered.
            yield 8 * ctx.clock_period
        vptr = shared["vptr"]
        wins = 0
        for _ in range(MAX_ATTEMPTS):
            if wins >= increments:
                break
            if (yield from smem.try_reserve(vptr)):
                value = yield from smem.read(vptr)
                yield from smem.write(vptr, value + 1)
                wins += 1
                if leak and wins >= increments:
                    return wins  # exits the critical section unreleased
                yield from smem.release(vptr)
            else:
                yield ctx.poll_interval_cycles * ctx.clock_period
        return wins

    return task


def _tasks(shared, **kwargs):
    return [make_incrementer(shared, owner=(pe == 0), **kwargs)
            for pe in range(NUM_PES)]


def _config():
    return (PlatformBuilder().pes(NUM_PES).wrapper_memories(1)
            .sanitize().build())


def test_try_reserve_contention_is_exact_and_clean():
    shared = {}
    report = run_tasks(_config(), _tasks(shared), max_time=2_000_000_000)
    assert report.all_pes_finished
    assert all(result == INCREMENTS for result in report.results.values())
    assert report.sanitizer_reports == []


def test_try_reserve_contention_total_is_counted():
    shared = {}
    total = {}

    def closing_reader(ctx):
        smem = ctx.smem(0)
        wins = yield from make_incrementer(shared)(ctx)
        # The other PEs may still be mid-stream; poll the counter under
        # the lock until every increment has landed.
        expected = NUM_PES * INCREMENTS
        while True:
            if (yield from smem.try_reserve(shared["vptr"])):
                value = yield from smem.read(shared["vptr"])
                yield from smem.release(shared["vptr"])
                if value >= expected:
                    total["value"] = value
                    return wins
            yield ctx.poll_interval_cycles * ctx.clock_period

    tasks = ([make_incrementer(shared, owner=True), closing_reader]
             + [make_incrementer(shared) for _ in range(NUM_PES - 2)])
    report = run_tasks(_config(), tasks, max_time=2_000_000_000)
    assert report.all_pes_finished
    assert total["value"] == NUM_PES * INCREMENTS  # no lost updates
    assert report.sanitizer_reports == []


def test_leaked_try_reserve_win_is_reported():
    shared = {}
    tasks = ([make_incrementer(shared, owner=True, increments=2, leak=True)]
             + [make_incrementer(shared, increments=2)
                for _ in range(NUM_PES - 1)])
    report = run_tasks(_config(), tasks, max_time=2_000_000_000)
    assert report.all_pes_finished  # contenders give up, none deadlocks
    leaks = [r for r in report.sanitizer_reports
             if r["checker"] == "lock-leak"]
    assert len(leaks) == 1
    assert "still RESERVEd by pe0" in leaks[0]["message"]
