"""Stress workloads: clean variants sanitize clean on every topology,
seeded mutations are caught by the matching checker (negative tests)."""

import pytest

import repro.sw.catalog  # noqa: F401  (registers the workloads)
from repro.api import PlatformBuilder, run_tasks
from repro.sw.registry import workload

TOPOLOGIES = ["shared_bus", "crossbar", "mesh"]


def _builder(kind, *, irq=False, dma=0, memories=1):
    builder = PlatformBuilder().pes(2).wrapper_memories(memories)
    if kind == "crossbar":
        builder = builder.crossbar()
    elif kind == "mesh":
        builder = builder.mesh()
    if irq:
        builder = builder.irq_controller()
    if dma:
        builder = builder.dma(dma)
    return builder


def _run(builder, name, mutate=None, **params):
    config = builder.sanitize().build()
    inst = workload.create(name, config, mutate=mutate, **params)
    report = run_tasks(config, inst.tasks, max_time=500_000_000)
    return report, inst


# -- clean variants: zero findings on every topology -------------------------------
@pytest.mark.parametrize("kind", TOPOLOGIES)
def test_locked_handoff_clean_on_every_topology(kind):
    report, inst = _run(_builder(kind), "stress_locked_handoff",
                        words=16, seed=2)
    assert report.sanitizer_reports == []
    assert report.all_pes_finished
    assert all(check(report) is True for check in inst.checks)


@pytest.mark.parametrize("kind", TOPOLOGIES)
def test_irq_handoff_clean_on_every_topology(kind):
    report, inst = _run(_builder(kind, irq=True), "stress_irq_handoff",
                        words=16, seed=2)
    assert report.sanitizer_reports == []
    assert report.all_pes_finished
    assert all(check(report) is True for check in inst.checks)


@pytest.mark.parametrize("kind", TOPOLOGIES)
def test_dma_copy_clean_on_every_topology(kind):
    report, inst = _run(_builder(kind, dma=2, memories=2),
                        "stress_dma_copy", words=24, seed=2)
    assert report.sanitizer_reports == []
    assert report.all_pes_finished
    assert all(check(report) is True for check in inst.checks)


# -- seeded mutations: each planted bug must be caught ------------------------------
def test_drop_release_is_reported_as_lock_leak():
    report, _ = _run(_builder("shared_bus"), "stress_locked_handoff",
                     mutate="drop_release", words=16, seed=2)
    leaks = [r for r in report.sanitizer_reports
             if r["checker"] == "lock-leak"]
    assert len(leaks) == 1
    assert "still RESERVEd by pe0" in leaks[0]["message"]
    # The acquire site names the producer task for the fix.
    names = [frame[2] for frame in leaks[0]["sites"][0]["traceback"]]
    assert "task" in names


def test_drop_doorbell_is_reported_as_data_race():
    report, _ = _run(_builder("shared_bus", irq=True), "stress_irq_handoff",
                     mutate="drop_doorbell", words=16, seed=2)
    races = [r for r in report.sanitizer_reports
             if r["checker"] == "data-race"]
    assert len(races) == 1
    sites = races[0]["sites"]
    assert {site["master"] for site in sites} == {"pe0", "pe1"}
    ops = {site["op"] for site in sites}
    assert ops == {"array write", "array read"}


def test_drop_wait_is_reported_as_data_race_with_dma_site():
    report, _ = _run(_builder("shared_bus", dma=2, memories=2),
                     "stress_dma_copy", mutate="drop_wait",
                     words=48, seed=2)
    races = [r for r in report.sanitizer_reports
             if r["checker"] == "data-race"]
    assert races, "the blind read-back must race the DMA writes"
    masters = {site["master"] for race in races for site in race["sites"]}
    assert masters & {"dma0", "dma1"}, masters


def test_unknown_mutation_is_rejected():
    config = _builder("shared_bus").build()
    with pytest.raises(Exception, match="mutation"):
        workload.create("stress_locked_handoff", config, mutate="bogus")
