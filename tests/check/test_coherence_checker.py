"""Coherence-invariant checker: never two dirty L1 copies of one line.

The MSI protocol makes the dirty-dirty state unreachable on a healthy
platform, so the planted-bug test drives the checker with stub caches;
the platform test asserts that a real cached multi-PE run stays clean.
"""

from repro.api import PlatformBuilder, run_tasks
from repro.check.protocol import CoherenceChecker
from repro.check.report import ReportSink
from repro.memory import DataType


class _Alloc:
    def __init__(self, uid=1, vptr=0x100):
        self.uid = uid
        self.vptr = vptr


class _Line:
    def __init__(self, alloc, mem_index=0, line_no=0, lo=0, hi=32,
                 dirty=True):
        self.alloc = alloc
        self.mem_index = mem_index
        self.line_no = line_no
        self.lo_byte = lo
        self.hi_byte = hi
        self._dirty = dirty

    def has_dirty(self):
        return self._dirty


class _StubCache:
    def __init__(self, master_id, lines):
        self.master_id = master_id
        self._lines = lines

    def iter_lines(self):
        return iter(self._lines)

    def lines_overlapping(self, mem_index, lo_byte, hi_byte):
        return [line for line in self._lines
                if line.mem_index == mem_index and line.lo_byte < hi_byte
                and lo_byte < line.hi_byte]


def test_planted_dirty_dirty_is_reported_once():
    alloc = _Alloc()
    cache_a = _StubCache(0, [_Line(alloc, dirty=True)])
    cache_b = _StubCache(1, [_Line(alloc, dirty=True)])
    checker = CoherenceChecker(ReportSink(max_reports=8),
                               [cache_a, cache_b])
    assert checker.scan(now=100) == 1
    [report] = checker.sink.reports
    assert report.checker == "coherence"
    assert "dirty-dirty" in report.message
    assert len(report.sites) == 2
    assert {site.master for site in report.sites} == {"master0", "master1"}
    # Rescanning the same pair does not duplicate the finding.
    assert checker.scan(now=200) == 0
    assert checker.violations == 1


def test_clean_and_disjoint_lines_do_not_trip():
    alloc = _Alloc()
    other_alloc = _Alloc(uid=2, vptr=0x200)
    checker = CoherenceChecker(ReportSink(max_reports=8), [
        _StubCache(0, [_Line(alloc, dirty=True),
                       _Line(other_alloc, lo=64, hi=96, dirty=True)]),
        _StubCache(1, [_Line(alloc, dirty=False),          # clean copy
                       _Line(other_alloc, lo=96, hi=128)]),  # disjoint bytes
    ])
    assert checker.scan(now=1) == 0
    assert checker.sink.reports == []


def test_cached_platform_run_stays_coherence_clean():
    shared = {}

    def writer(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(16, DataType.UINT32)
        yield from smem.reserve(vptr)
        yield from smem.write_array(vptr, list(range(16)))
        yield from smem.release(vptr)
        shared["vptr"] = vptr
        shared["ready"] = True
        yield from ctx.compute(20)
        return 0

    def reader(ctx):
        smem = ctx.smem(0)
        while not shared.get("ready"):
            yield 16 * ctx.clock_period
        vptr = shared["vptr"]
        yield from smem.reserve(vptr)
        data = yield from smem.read_array(vptr, 16)
        yield from smem.release(vptr)
        return data

    config = (PlatformBuilder().pes(2).wrapper_memories(1)
              .l1_cache(sets=8, ways=2, line_bytes=16)
              .sanitize().build())
    report = run_tasks(config, [writer, reader])
    assert report.all_pes_finished
    assert report.results["pe1"] == list(range(16))
    coherence = [r for r in report.sanitizer_reports
                 if r["checker"] == "coherence"]
    assert coherence == []
