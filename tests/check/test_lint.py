"""Static-lint tests: planted-bug corpus, clean code, engine and CLI."""

import textwrap

import pytest

from repro.check.lint import lint_paths, lint_source
from repro.check.lint.__main__ import main
from repro.check.lint.engine import select_rules
from repro.check.lint.rules import RULES


def _lint(source, select=None):
    return lint_source(textwrap.dedent(source), "task.py", select=select)


def _codes(findings):
    return [finding.code for finding in findings]


# -- RC001: un-consumed generator call ----------------------------------------------
def test_rc001_flags_bare_api_call_statement():
    findings = _lint("""
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, "u32")
            smem.write_array(vptr, [1, 2, 3, 4])
            return vptr
    """)
    assert _codes(findings) == ["RC001"]
    assert "yield from" in findings[0].message
    assert findings[0].line == 5


def test_rc001_flags_assignment_of_undriven_generator():
    findings = _lint("""
        def task(ctx):
            yield ctx.clock_period
            data = ctx.smem(0).read_array(0x100, 8)
            return data
    """)
    assert _codes(findings) == ["RC001"]


def test_rc001_flags_generic_name_only_with_api_receiver():
    findings = _lint("""
        def task(ctx, log_file):
            yield ctx.clock_period
            log_file.write("hello")     # file IO: not flagged
            ctx.port.write(0x100, 1)    # platform API: flagged
    """)
    assert _codes(findings) == ["RC001"]
    assert "ctx.port.write" in findings[0].message


def test_rc001_clean_yield_from_and_non_generators():
    findings = _lint("""
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, "u32")
            yield from smem.write_array(vptr, [1, 2])
            return vptr

        def host_helper(smem):
            smem.describe()     # not a generator function: rule is off
    """)
    assert findings == []


# -- RC002: host sleep --------------------------------------------------------------
def test_rc002_flags_time_sleep_and_aliased_import():
    findings = _lint("""
        import time
        from time import sleep as snooze

        def task(ctx):
            yield ctx.clock_period
            time.sleep(1)
            snooze(2)
    """)
    assert _codes(findings) == ["RC002", "RC002"]
    assert "host process" in findings[0].message


def test_rc002_ignores_unrelated_sleep():
    findings = _lint("""
        def task(robot):
            robot.sleep(1)      # not the time module
    """)
    assert findings == []


# -- RC003: unseeded random ---------------------------------------------------------
def test_rc003_flags_unseeded_module_random():
    findings = _lint("""
        import random

        def jitter():
            return random.randint(0, 7)
    """)
    assert _codes(findings) == ["RC003"]
    assert "seed" in findings[0].message


def test_rc003_accepts_seeded_or_instance_random():
    findings = _lint("""
        import random

        random.seed(42)

        def jitter(seed):
            rng = random.Random(seed)
            return rng.randint(0, 7) + random.randint(0, 1)
    """)
    assert findings == []


def test_rc003_flags_seedless_random_instance():
    findings = _lint("""
        import random

        def jitter():
            return random.Random().random()
    """)
    assert _codes(findings) == ["RC003"]


# -- RC004: reserve without release -------------------------------------------------
def test_rc004_flags_reserve_leak():
    findings = _lint("""
        def task(ctx):
            smem = ctx.smem(0)
            vptr = yield from smem.alloc(4, "u32")
            yield from smem.reserve(vptr)
            yield from smem.write(vptr, 1)
            return vptr
    """)
    assert _codes(findings) == ["RC004"]
    assert "release" in findings[0].message


def test_rc004_clean_when_released_or_api_internal():
    findings = _lint("""
        def task(ctx):
            smem = ctx.smem(0)
            if (yield from smem.try_reserve(0x100)):
                yield from smem.release(0x100)

        class Api:
            def reserve_all(self):
                yield from self.reserve(0)      # API-internal: exempt
    """)
    assert findings == []


# -- RC000 / engine -----------------------------------------------------------------
def test_syntax_error_becomes_rc000():
    findings = _lint("def broken(:\n")
    assert _codes(findings) == ["RC000"]
    assert "syntax error" in findings[0].message


def test_select_filters_rules_and_rejects_unknown():
    source = """
        import time

        def task(ctx):
            yield 1
            time.sleep(1)
            ctx.compute(5)
    """
    assert _codes(_lint(source)) == ["RC002", "RC001"] or \
        sorted(_codes(_lint(source))) == ["RC001", "RC002"]
    assert _codes(_lint(source, select=["RC002"])) == ["RC002"]
    with pytest.raises(ValueError, match="matches no rule"):
        select_rules(["RC999"])


def test_findings_sorted_and_formatted():
    findings = _lint("""
        import time

        def task(ctx):
            yield 1
            ctx.compute(5)
            time.sleep(1)
    """)
    assert [f.line for f in findings] == sorted(f.line for f in findings)
    formatted = findings[0].format()
    assert formatted.startswith("task.py:")
    assert findings[0].code in formatted


def test_noqa_suppresses_findings():
    source = """
        import time

        def task(ctx):
            yield 1
            time.sleep(1)  # noqa: RC002
            time.sleep(2)  # noqa
            time.sleep(3)  # noqa: RC001 (wrong code: stays)
            ctx.compute(5)
    """
    findings = _lint(source)
    assert _codes(findings) == ["RC002", "RC001"]
    # Only the wrong-code sleep survives, not the suppressed ones.
    assert findings[0].line == 8


def test_registry_has_the_documented_rules():
    assert set(RULES) == {"RC001", "RC002", "RC003", "RC004"}


# -- paths + CLI --------------------------------------------------------------------
def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "ok.py").write_text(
        "def task(ctx):\n    yield from ctx.compute(1)\n")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "bad.py").write_text(
        "def task(ctx):\n    yield 1\n    ctx.compute(1)\n")
    findings = lint_paths([str(tmp_path)])
    assert _codes(findings) == ["RC001"]
    assert findings[0].path.endswith("bad.py")


def test_cli_exit_codes_and_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def task(ctx):\n    yield 1\n    ctx.compute(1)\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr()
    assert "RC001" in out.out
    assert "1 finding(s)" in out.err

    good = tmp_path / "good.py"
    good.write_text("def task(ctx):\n    yield from ctx.compute(1)\n")
    assert main([str(good)]) == 0

    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    assert "RC001" in listing and "RC004" in listing


def test_cli_select_unknown_rule_errors(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["--select", "RC999", str(tmp_path)])
    assert "matches no rule" in capsys.readouterr().err
