"""Tests for the SharedMemoryWrapper bus slave (functional + timing)."""


from repro.fabric import BusOp, BusRequest
from repro.memory import (
    IO_ARRAY_BASE,
    DataType,
    Endianness,
    HostMemory,
    MemCommand,
    MemOpcode,
    MemStatus,
    ModeledDynamicMemory,
)
from repro.wrapper import SharedMemoryWrapper, WrapperDelays


def run_slave(slave, request, offset):
    generator = slave.serve(request, offset)
    cycles = 0
    while True:
        try:
            next(generator)
            cycles += 1
        except StopIteration as stop:
            cycles += 1
            return stop.value, cycles


def send_command(memory, command, master_id=0):
    request = BusRequest(master_id, BusOp.WRITE, 0, burst_data=command.to_words())
    return run_slave(memory, request, 0)


class TestAllocFree:
    def test_alloc_returns_vptr_zero_first(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=10))
        assert response.ok
        assert response.data == 0  # paper: first Vptr is zero

    def test_data_lives_in_host_memory(self):
        host = HostMemory()
        wrapper = SharedMemoryWrapper(host=host)
        send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=16))
        assert host.stats.alloc_calls == 1
        assert host.stats.live_bytes == 64

    def test_free_releases_host_memory(self):
        host = HostMemory()
        wrapper = SharedMemoryWrapper(host=host)
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=16))
        send_command(wrapper, MemCommand(MemOpcode.FREE, vptr=response.data))
        assert host.check_all_freed()
        assert wrapper.live_count() == 0

    def test_capacity_limit(self):
        wrapper = SharedMemoryWrapper(capacity_bytes=100)
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=20))
        assert response.ok
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=20))
        assert not response.ok
        assert wrapper.last_status == MemStatus.ERR_FULL

    def test_capacity_freed_can_be_reallocated(self):
        wrapper = SharedMemoryWrapper(capacity_bytes=100)
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=20))
        send_command(wrapper, MemCommand(MemOpcode.FREE, vptr=response.data))
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=20))
        assert response.ok

    def test_free_unknown_pointer(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.FREE, vptr=0x40))
        assert wrapper.last_status == MemStatus.ERR_INVALID_PTR

    def test_alloc_zero_dim_malformed(self):
        wrapper = SharedMemoryWrapper()
        send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=0))
        assert wrapper.last_status == MemStatus.ERR_MALFORMED


class TestScalarAccess:
    def make_with_alloc(self, dim=8, data_type=DataType.UINT32):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(
            wrapper, MemCommand(MemOpcode.ALLOC, dim=dim, data_type=data_type)
        )
        return wrapper, response.data

    def test_write_read_roundtrip(self):
        wrapper, vptr = self.make_with_alloc()
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=vptr, offset=5, data=42))
        response, _ = send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr, offset=5))
        assert response.data == 42

    def test_unwritten_elements_are_zero(self):
        wrapper, vptr = self.make_with_alloc()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr, offset=3))
        assert response.data == 0  # calloc semantics

    def test_int16_translation(self):
        wrapper, vptr = self.make_with_alloc(dim=4, data_type=DataType.INT16)
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=vptr, offset=1,
                                         data=(-77) & 0xFFFFFFFF))
        response, _ = send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr, offset=1))
        assert response.data == (-77) & 0xFFFFFFFF

    def test_pointer_arithmetic(self):
        wrapper, vptr = self.make_with_alloc(dim=8, data_type=DataType.UINT32)
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=vptr, offset=6, data=99))
        # Interior pointer: vptr + 24 bytes addresses element 6.
        response, _ = send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr + 24))
        assert response.data == 99

    def test_second_allocation_pointer_arithmetic(self):
        wrapper = SharedMemoryWrapper()
        first, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=10))
        second, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=10))
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=second.data, offset=2,
                                         data=7))
        response, _ = send_command(
            wrapper, MemCommand(MemOpcode.READ, vptr=second.data + 8)
        )
        assert response.data == 7

    def test_out_of_range(self):
        wrapper, vptr = self.make_with_alloc(dim=4)
        send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr, offset=4))
        assert wrapper.last_status == MemStatus.ERR_OUT_OF_RANGE

    def test_invalid_pointer(self):
        wrapper, vptr = self.make_with_alloc(dim=4)
        send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr + 4 * 100))
        assert wrapper.last_status == MemStatus.ERR_INVALID_PTR

    def test_bad_sm_addr(self):
        wrapper = SharedMemoryWrapper(sm_addr=2)
        send_command(wrapper, MemCommand(MemOpcode.ALLOC, sm_addr=1, dim=4))
        assert wrapper.last_status == MemStatus.ERR_BAD_SM_ADDR

    def test_query(self):
        wrapper, vptr = self.make_with_alloc(dim=12, data_type=DataType.UINT16)
        response, _ = send_command(wrapper, MemCommand(MemOpcode.QUERY, vptr=vptr))
        assert response.data == 24


class TestArrays:
    def test_array_roundtrip_through_io_window(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=32))
        vptr = response.data
        payload = [i * 3 for i in range(32)]
        run_slave(wrapper, BusRequest(0, BusOp.WRITE, 0, burst_data=payload),
                  IO_ARRAY_BASE)
        send_command(wrapper, MemCommand(MemOpcode.WRITE_ARRAY, vptr=vptr, dim=32))
        send_command(wrapper, MemCommand(MemOpcode.READ_ARRAY, vptr=vptr, dim=32))
        readback, _ = run_slave(
            wrapper, BusRequest(0, BusOp.READ, 0, burst_length=32), IO_ARRAY_BASE
        )
        assert readback.burst_data == payload

    def test_array_offset_window(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=16))
        vptr = response.data
        run_slave(wrapper, BusRequest(0, BusOp.WRITE, 0, burst_data=[5, 6, 7, 8]),
                  IO_ARRAY_BASE)
        send_command(wrapper, MemCommand(MemOpcode.WRITE_ARRAY, vptr=vptr, offset=4,
                                         dim=4))
        response, _ = send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr, offset=5))
        assert response.data == 6

    def test_array_out_of_range(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4))
        send_command(wrapper, MemCommand(MemOpcode.READ_ARRAY, vptr=response.data,
                                         dim=8))
        assert wrapper.last_status == MemStatus.ERR_OUT_OF_RANGE

    def test_array_write_is_blocked_by_reservation(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=8),
                                   master_id=0)
        vptr = response.data
        send_command(wrapper, MemCommand(MemOpcode.RESERVE, vptr=vptr), master_id=0)
        send_command(wrapper, MemCommand(MemOpcode.WRITE_ARRAY, vptr=vptr, dim=8),
                     master_id=1)
        assert wrapper.last_status == MemStatus.ERR_RESERVED


class TestCoherence:
    def test_reservation_protocol(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4),
                                   master_id=0)
        vptr = response.data
        send_command(wrapper, MemCommand(MemOpcode.RESERVE, vptr=vptr), master_id=0)
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=vptr, data=9), master_id=1)
        assert wrapper.last_status == MemStatus.ERR_RESERVED
        send_command(wrapper, MemCommand(MemOpcode.FREE, vptr=vptr), master_id=1)
        assert wrapper.last_status == MemStatus.ERR_RESERVED
        send_command(wrapper, MemCommand(MemOpcode.RELEASE, vptr=vptr), master_id=0)
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=vptr, data=9), master_id=1)
        assert wrapper.last_status == MemStatus.OK

    def test_reserve_conflict_status(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4),
                                   master_id=0)
        vptr = response.data
        send_command(wrapper, MemCommand(MemOpcode.RESERVE, vptr=vptr), master_id=0)
        send_command(wrapper, MemCommand(MemOpcode.RESERVE, vptr=vptr), master_id=1)
        assert wrapper.last_status == MemStatus.ERR_RESERVED

    def test_reserve_unknown_pointer(self):
        wrapper = SharedMemoryWrapper()
        send_command(wrapper, MemCommand(MemOpcode.RESERVE, vptr=0x99))
        assert wrapper.last_status == MemStatus.ERR_INVALID_PTR

    def test_reads_are_not_blocked_by_reservation(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4),
                                   master_id=0)
        vptr = response.data
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=vptr, data=3), master_id=0)
        send_command(wrapper, MemCommand(MemOpcode.RESERVE, vptr=vptr), master_id=0)
        response, _ = send_command(wrapper, MemCommand(MemOpcode.READ, vptr=vptr),
                                   master_id=1)
        assert response.ok and response.data == 3


class TestTiming:
    def test_cycles_follow_delay_parameters(self):
        fast = SharedMemoryWrapper(delays=WrapperDelays.sram_like())
        slow = SharedMemoryWrapper(delays=WrapperDelays.sdram_like())
        _, fast_cycles = send_command(fast, MemCommand(MemOpcode.ALLOC, dim=16))
        _, slow_cycles = send_command(slow, MemCommand(MemOpcode.ALLOC, dim=16))
        assert slow_cycles > fast_cycles

    def test_array_cycles_scale_with_length(self):
        wrapper = SharedMemoryWrapper()
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=128))
        vptr = response.data
        _, short_cycles = send_command(
            wrapper, MemCommand(MemOpcode.READ_ARRAY, vptr=vptr, dim=4)
        )
        _, long_cycles = send_command(
            wrapper, MemCommand(MemOpcode.READ_ARRAY, vptr=vptr, dim=64)
        )
        assert long_cycles - short_cycles == 60

    def test_alloc_cost_does_not_grow_with_live_allocations(self):
        """Unlike the modelled baseline, wrapper allocations are O(1) in cycles."""
        wrapper = SharedMemoryWrapper()
        _, first = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4))
        for _ in range(50):
            send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4))
        _, late = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4))
        assert late == first

    def test_wrapper_cheaper_than_modeled_baseline_for_alloc_heavy_use(self):
        wrapper = SharedMemoryWrapper()
        baseline = ModeledDynamicMemory(1 << 20)
        wrapper_cycles = 0
        baseline_cycles = 0
        for _ in range(30):
            _, c = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=16))
            wrapper_cycles += c
            _, c = send_command(baseline, MemCommand(MemOpcode.ALLOC, dim=16))
            baseline_cycles += c
        assert wrapper_cycles < baseline_cycles

    def test_data_dependent_delay(self):
        wrapper = SharedMemoryWrapper(
            delays=WrapperDelays(data_dependent=lambda op, n: n // 16)
        )
        _, small = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=4))
        _, big = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=64))
        assert big > small


class TestReport:
    def test_report_contents(self):
        wrapper = SharedMemoryWrapper(capacity_bytes=1024, name="sm0")
        response, _ = send_command(wrapper, MemCommand(MemOpcode.ALLOC, dim=8))
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=response.data, data=1))
        report = wrapper.report()
        assert report["name"] == "sm0"
        assert report["live_allocations"] == 1
        assert report["used_bytes"] == 32
        assert report["capacity_bytes"] == 1024
        assert report["op_counts"]["ALLOC"] == 1
        assert report["host_stats"]["alloc_calls"] == 1
        assert report["translator_stats"]["element_writes"] == 1
        assert report["fsm_cycles"] > 0

    def test_endianness_configurable(self):
        wrapper = SharedMemoryWrapper(endianness=Endianness.BIG)
        response, _ = send_command(
            wrapper, MemCommand(MemOpcode.ALLOC, dim=1, data_type=DataType.UINT32)
        )
        vptr = response.data
        send_command(wrapper, MemCommand(MemOpcode.WRITE, vptr=vptr, data=0x11223344))
        entry = wrapper.table.lookup(vptr)
        assert entry.hptr.read_bytes(0, 4) == b"\x11\x22\x33\x44"

    def test_shared_host_between_wrappers(self):
        host = HostMemory()
        first = SharedMemoryWrapper(host=host, sm_addr=0)
        second = SharedMemoryWrapper(host=host, sm_addr=1)
        send_command(first, MemCommand(MemOpcode.ALLOC, dim=4, sm_addr=0))
        send_command(second, MemCommand(MemOpcode.ALLOC, dim=4, sm_addr=1))
        assert host.stats.alloc_calls == 2
