"""Tests for the high-level shared-memory API driven over a real bus."""


from repro.interconnect import SharedBus
from repro.kernel import Module, Simulator
from repro.memory import DataType, MemStatus, ModeledDynamicMemory, REGISTER_WINDOW_BYTES
from repro.wrapper import ApiError, SharedMemoryAPI, SharedMemoryWrapper


class ApiDriver(Module):
    """Runs a scripted coroutine against a SharedMemoryAPI instance."""

    def __init__(self, name, api, script, parent=None):
        super().__init__(name, parent)
        self.api = api
        self.script = script
        self.result = None
        self.error = None
        self.add_process(self._run, name="driver")

    def _run(self):
        try:
            self.result = yield from self.script(self.api)
        except ApiError as exc:
            self.error = exc


def run_api_script(script, slave_factory=SharedMemoryWrapper, raise_on_error=True):
    top = Module("top")
    bus = SharedBus("bus", period=10, parent=top)
    memory = slave_factory()
    bus.attach_slave("smem", 0x1000, REGISTER_WINDOW_BYTES, memory)
    port = bus.master_port(0)
    api = SharedMemoryAPI(port, base_address=0x1000, raise_on_error=raise_on_error)
    driver = ApiDriver("pe0", api, script, parent=top)
    sim = Simulator(top)
    sim.run()
    return driver, memory, sim


class TestScalarApi:
    def test_alloc_write_read_free(self):
        def script(api):
            vptr = yield from api.alloc(8, DataType.UINT32)
            yield from api.write(vptr, 123, offset=3)
            value = yield from api.read(vptr, offset=3)
            ok = yield from api.free(vptr)
            return vptr, value, ok

        driver, memory, _ = run_api_script(script)
        vptr, value, ok = driver.result
        assert vptr == 0
        assert value == 123
        assert ok
        assert memory.live_count() == 0

    def test_signed_read(self):
        def script(api):
            vptr = yield from api.alloc(4, DataType.INT16)
            yield from api.write(vptr, -500, offset=1)
            return (yield from api.read_signed(vptr, DataType.INT16, offset=1))

        driver, _, _ = run_api_script(script)
        assert driver.result == -500

    def test_query(self):
        def script(api):
            vptr = yield from api.alloc(10, DataType.INT16)
            return (yield from api.query(vptr))

        driver, _, _ = run_api_script(script)
        assert driver.result == 20

    def test_error_raises_api_error(self):
        def script(api):
            yield from api.free(0x1234)

        driver, _, _ = run_api_script(script)
        assert driver.error is not None
        assert driver.error.status == int(MemStatus.ERR_INVALID_PTR)

    def test_error_without_raise(self):
        def script(api):
            value = yield from api.read(0x1234)
            return value, api.last_status

        driver, _, _ = run_api_script(script, raise_on_error=False)
        value, status = driver.result
        assert value is None
        assert status == MemStatus.ERR_INVALID_PTR

    def test_status_register(self):
        def script(api):
            yield from api.alloc(4)
            return (yield from api.status())

        driver, _, _ = run_api_script(script)
        assert driver.result == MemStatus.OK


class TestArrayApi:
    def test_array_roundtrip(self):
        payload = list(range(40))

        def script(api):
            vptr = yield from api.alloc(40, DataType.UINT32)
            yield from api.write_array(vptr, payload)
            return (yield from api.read_array(vptr, 40))

        driver, _, _ = run_api_script(script)
        assert driver.result == payload

    def test_array_chunks_beyond_io_window(self):
        payload = [i & 0xFFFF for i in range(600)]  # > 256-word I/O array

        def script(api):
            vptr = yield from api.alloc(600, DataType.UINT32)
            yield from api.write_array(vptr, payload)
            return (yield from api.read_array(vptr, 600))

        driver, _, _ = run_api_script(script)
        assert driver.result == payload

    def test_signed_array(self):
        payload = [-1, -2, 3, -40000]

        def script(api):
            vptr = yield from api.alloc(4, DataType.INT32)
            yield from api.write_array(vptr, [v & 0xFFFFFFFF for v in payload])
            return (yield from api.read_array_signed(vptr, 4, DataType.INT32))

        driver, _, _ = run_api_script(script)
        assert driver.result == payload

    def test_memcpy(self):
        def script(api):
            src = yield from api.alloc(8, DataType.UINT32)
            dst = yield from api.alloc(8, DataType.UINT32)
            yield from api.write_array(src, [7] * 8)
            yield from api.memcpy(dst, src, 8)
            return (yield from api.read_array(dst, 8))

        driver, _, _ = run_api_script(script)
        assert driver.result == [7] * 8


class TestCoherenceApi:
    def test_reserve_release(self):
        def script(api):
            vptr = yield from api.alloc(4)
            ok_reserve = yield from api.reserve(vptr)
            ok_release = yield from api.release(vptr)
            return ok_reserve, ok_release

        driver, _, _ = run_api_script(script)
        assert driver.result == (True, True)

    def test_try_reserve_does_not_raise(self):
        def script(api):
            ok = yield from api.try_reserve(0x5555)  # noqa: RC004 — fails by design
            return ok, api.last_status

        driver, _, _ = run_api_script(script)
        ok, status = driver.result
        assert not ok
        assert status == MemStatus.ERR_INVALID_PTR


class TestApiAgainstBaseline:
    """The same API must work against the fully-modelled baseline memory."""

    def test_scalar_roundtrip_on_baseline(self):
        def script(api):
            vptr = yield from api.alloc(8, DataType.UINT32)
            yield from api.write(vptr, 99, offset=2)
            return (yield from api.read(vptr, offset=2))

        driver, memory, _ = run_api_script(
            script, slave_factory=lambda: ModeledDynamicMemory(64 * 1024)
        )
        assert driver.result == 99
        assert isinstance(memory, ModeledDynamicMemory)

    def test_array_roundtrip_on_baseline(self):
        payload = [3, 1, 4, 1, 5, 9, 2, 6]

        def script(api):
            vptr = yield from api.alloc(8, DataType.UINT32)
            yield from api.write_array(vptr, payload)
            return (yield from api.read_array(vptr, 8))

        driver, _, _ = run_api_script(
            script, slave_factory=lambda: ModeledDynamicMemory(64 * 1024)
        )
        assert driver.result == payload

    def test_baseline_takes_more_simulated_time(self):
        def script(api):
            for _ in range(10):
                vptr = yield from api.alloc(16, DataType.UINT32)
                yield from api.write(vptr, 1)
            return True

        _, _, sim_wrapper = run_api_script(script)
        _, _, sim_baseline = run_api_script(
            script, slave_factory=lambda: ModeledDynamicMemory(1 << 20)
        )
        assert sim_baseline.now > sim_wrapper.now

    def test_api_call_counter(self):
        def script(api):
            vptr = yield from api.alloc(4)
            yield from api.write(vptr, 5)
            yield from api.read(vptr)
            return api.calls

        driver, _, _ = run_api_script(script)
        assert driver.result == 3
