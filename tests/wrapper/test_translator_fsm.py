"""Tests for the translator, the delay parameters and the cycle-true FSM."""

import pytest
from hypothesis import given, strategies as st

from repro.memory import DataType, Endianness, HostMemory, MemOpcode
from repro.wrapper import (
    S_DECODE,
    S_HOST_CALL,
    S_RESPOND,
    S_TABLE,
    S_TRANSFER,
    TranslationError,
    Translator,
    WrapperDelays,
    WrapperFsm,
)


class TestTranslator:
    def test_calloc_and_free(self):
        host = HostMemory()
        translator = Translator(host)
        block = translator.host_calloc(16, DataType.UINT32)
        assert block.size == 64
        translator.host_free(block)
        assert host.check_all_freed()
        assert translator.stats.host_allocs == 1
        assert translator.stats.host_frees == 1

    def test_invalid_calloc(self):
        translator = Translator(HostMemory())
        with pytest.raises(TranslationError):
            translator.host_calloc(0, DataType.UINT32)

    def test_host_limit_surfaces_as_translation_error(self):
        translator = Translator(HostMemory(limit_bytes=16))
        with pytest.raises(TranslationError):
            translator.host_calloc(100, DataType.UINT32)

    def test_scalar_element_roundtrip(self):
        translator = Translator(HostMemory())
        block = translator.host_calloc(8, DataType.INT16)
        translator.store_element(block, 4, -321, DataType.INT16)
        assert translator.load_element(block, 4, DataType.INT16) == -321

    def test_endianness_changes_host_bytes(self):
        little = Translator(HostMemory(), Endianness.LITTLE)
        big = Translator(HostMemory(), Endianness.BIG)
        block_l = little.host_calloc(1, DataType.UINT32)
        block_b = big.host_calloc(1, DataType.UINT32)
        little.store_element(block_l, 0, 0x11223344, DataType.UINT32)
        big.store_element(block_b, 0, 0x11223344, DataType.UINT32)
        assert block_l.read_bytes(0, 4) == b"\x44\x33\x22\x11"
        assert block_b.read_bytes(0, 4) == b"\x11\x22\x33\x44"

    def test_array_roundtrip(self):
        translator = Translator(HostMemory())
        block = translator.host_calloc(16, DataType.UINT16)
        values = [1, 2, 70000 & 0xFFFF, 9]
        translator.store_array(block, 0, values, DataType.UINT16)
        assert translator.load_array(block, 0, 4, DataType.UINT16) == values
        assert translator.stats.array_elements_moved == 8

    def test_as_signed(self):
        assert Translator.as_signed(0xFFFE, DataType.INT16) == -2

    @given(st.lists(st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1),
                    min_size=1, max_size=32))
    def test_int32_array_property(self, values):
        translator = Translator(HostMemory())
        block = translator.host_calloc(len(values), DataType.INT32)
        translator.store_array(block, 0, [v & 0xFFFFFFFF for v in values],
                               DataType.INT32)
        loaded = translator.load_array(block, 0, len(values), DataType.INT32)
        assert [Translator.as_signed(v, DataType.INT32) for v in loaded] == values


class TestWrapperDelays:
    def test_defaults_are_positive(self):
        delays = WrapperDelays()
        assert delays.decode_cycles >= 1
        assert delays.as_dict()["host_call_cycles"] == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WrapperDelays(table_cycles=-1)

    def test_extra_hook(self):
        delays = WrapperDelays(data_dependent=lambda op, nbytes: nbytes // 8)
        assert delays.extra(MemOpcode.ALLOC, 64) == 8
        assert WrapperDelays().extra(MemOpcode.ALLOC, 64) == 0

    def test_negative_hook_rejected(self):
        delays = WrapperDelays(data_dependent=lambda op, nbytes: -5)
        with pytest.raises(ValueError):
            delays.extra(MemOpcode.READ, 4)

    def test_presets_ordering(self):
        assert (WrapperDelays.sdram_like().host_call_cycles
                > WrapperDelays.sram_like().host_call_cycles)


class TestWrapperFsm:
    def test_alloc_schedule_contents(self):
        fsm = WrapperFsm(WrapperDelays())
        schedule = fsm.schedule_for(MemOpcode.ALLOC, words=0, byte_count=64)
        assert schedule[0] == S_DECODE
        assert S_HOST_CALL in schedule
        assert schedule[-1] == S_RESPOND

    def test_array_schedule_scales_with_words(self):
        fsm = WrapperFsm(WrapperDelays())
        short = fsm.schedule_for(MemOpcode.READ_ARRAY, words=2, byte_count=8)
        long = fsm.schedule_for(MemOpcode.READ_ARRAY, words=32, byte_count=128)
        assert len(long) - len(short) == 30
        assert long.count(S_TRANSFER) == 32

    def test_scalar_schedule_has_no_transfer_state(self):
        fsm = WrapperFsm(WrapperDelays())
        schedule = fsm.schedule_for(MemOpcode.READ, words=0, byte_count=4)
        assert S_TRANSFER not in schedule

    def test_free_recompacts_in_table_state(self):
        fsm = WrapperFsm(WrapperDelays(table_cycles=2))
        schedule = fsm.schedule_for(MemOpcode.FREE, words=0, byte_count=0)
        assert schedule.count(S_TABLE) == 4  # lookup + re-compaction

    def test_run_operation_counts_cycles_and_occupancy(self):
        fsm = WrapperFsm(WrapperDelays())
        cycles = fsm.run_operation(MemOpcode.ALLOC, byte_count=64)
        assert cycles == len(fsm.schedule_for(MemOpcode.ALLOC, 0, 64))
        occupancy = fsm.occupancy()
        assert occupancy[S_DECODE] == WrapperDelays().decode_cycles
        assert fsm.cycles == cycles
        assert fsm.operations["ALLOC"] == 1
        assert fsm.state == S_RESPOND or fsm.state == "IDLE"

    def test_data_dependent_hook_lengthens_schedule(self):
        base = WrapperFsm(WrapperDelays())
        hooked = WrapperFsm(WrapperDelays(data_dependent=lambda op, n: 5))
        assert (len(hooked.schedule_for(MemOpcode.READ, 0, 4))
                == len(base.schedule_for(MemOpcode.READ, 0, 4)) + 5)

    def test_busy_fraction(self):
        fsm = WrapperFsm(WrapperDelays())
        assert fsm.busy_fraction() == 0.0
        fsm.run_operation(MemOpcode.READ)
        assert fsm.busy_fraction() == 1.0
