"""Tests for the pointer table: Vptr generation, lookup, reservation, capacity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import DataType, HostMemory
from repro.wrapper import PointerTable, PointerTableError


def make_table(capacity=None, base_vptr=0):
    host = HostMemory()
    table = PointerTable(capacity_bytes=capacity, base_vptr=base_vptr)
    return table, host


def insert(table, host, dim, data_type=DataType.UINT32):
    block = host.calloc(dim, 4)
    return table.insert(block, dim, data_type)


class TestVptrGeneration:
    def test_first_vptr_is_zero(self):
        table, host = make_table()
        entry = insert(table, host, 10)
        assert entry.vptr == 0

    def test_vptr_is_cumulative_sum(self):
        table, host = make_table()
        first = insert(table, host, 10)          # 40 bytes
        second = insert(table, host, 3)          # 12 bytes
        third = insert(table, host, 1)
        assert first.vptr == 0
        assert second.vptr == 40
        assert third.vptr == 52

    def test_element_size_affects_vptr(self):
        table, host = make_table()
        first = table.insert(host.calloc(10, 2), 10, DataType.INT16)   # 20 bytes
        second = insert(table, host, 1)
        assert second.vptr == first.vptr + 20

    def test_base_vptr_offsets_the_window(self):
        table, host = make_table(base_vptr=0x1000)
        entry = insert(table, host, 4)
        assert entry.vptr == 0x1000

    def test_vptr_restarts_from_last_survivor_after_free(self):
        table, host = make_table()
        insert(table, host, 10)                  # vptr 0
        b = insert(table, host, 10)              # vptr 40
        table.remove(b.vptr)
        c = insert(table, host, 2)
        assert c.vptr == 40  # last survivor ends at 40

    def test_vptr_zero_after_all_freed(self):
        table, host = make_table()
        a = insert(table, host, 10)
        table.remove(a.vptr)
        b = insert(table, host, 1)
        assert b.vptr == 0


class TestLookupAndResolve:
    def test_exact_lookup(self):
        table, host = make_table()
        entry = insert(table, host, 8)
        assert table.lookup(entry.vptr) is entry

    def test_lookup_unknown_raises(self):
        table, _ = make_table()
        with pytest.raises(PointerTableError):
            table.lookup(0x40)

    def test_resolve_interior_pointer(self):
        table, host = make_table()
        insert(table, host, 10)                  # [0, 40)
        entry = insert(table, host, 10)          # [40, 80)
        found, offset = table.resolve(52)
        assert found is entry
        assert offset == 12

    def test_resolve_out_of_range_raises(self):
        table, host = make_table()
        insert(table, host, 4)
        with pytest.raises(PointerTableError):
            table.resolve(100)
        assert table.try_resolve(100) is None

    def test_remove_keeps_other_vptrs(self):
        table, host = make_table()
        a = insert(table, host, 4)
        b = insert(table, host, 4)
        c = insert(table, host, 4)
        table.remove(b.vptr)
        assert table.lookup(a.vptr).vptr == a.vptr
        assert table.lookup(c.vptr).vptr == c.vptr
        with pytest.raises(PointerTableError):
            table.lookup(b.vptr)

    def test_remove_unknown_raises(self):
        table, _ = make_table()
        with pytest.raises(PointerTableError):
            table.remove(0)


class TestCapacity:
    def test_capacity_enforced(self):
        table, host = make_table(capacity=100)
        insert(table, host, 20)                  # 80 bytes
        assert not table.would_fit(40)
        with pytest.raises(PointerTableError):
            insert(table, host, 10)

    def test_free_restores_capacity(self):
        table, host = make_table(capacity=100)
        entry = insert(table, host, 20)
        table.remove(entry.vptr)
        assert table.would_fit(80)
        insert(table, host, 20)

    def test_unlimited_capacity(self):
        table, host = make_table(capacity=None)
        assert table.free_bytes() is None
        insert(table, host, 10_000)

    def test_used_and_free_bytes(self):
        table, host = make_table(capacity=200)
        insert(table, host, 10)
        assert table.used_bytes() == 40
        assert table.free_bytes() == 160

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PointerTable(capacity_bytes=0)

    def test_invalid_dimension(self):
        table, host = make_table()
        block = host.calloc(1, 4)
        with pytest.raises(PointerTableError):
            table.insert(block, 0, DataType.UINT32)


class TestReservation:
    def test_reserve_and_release(self):
        table, host = make_table()
        entry = insert(table, host, 4)
        table.reserve(entry.vptr, master_id=1)
        assert entry.reserved and entry.reserved_by == 1
        assert table.check_access(entry, 1)
        assert not table.check_access(entry, 2)
        table.release(entry.vptr, master_id=1)
        assert not entry.reserved
        assert table.check_access(entry, 2)

    def test_reserve_conflict(self):
        table, host = make_table()
        entry = insert(table, host, 4)
        table.reserve(entry.vptr, master_id=1)
        with pytest.raises(PointerTableError):
            table.reserve(entry.vptr, master_id=2)
        with pytest.raises(PointerTableError):
            table.release(entry.vptr, master_id=2)

    def test_reserve_is_idempotent_for_holder(self):
        table, host = make_table()
        entry = insert(table, host, 4)
        table.reserve(entry.vptr, master_id=1)  # noqa: RC004
        table.reserve(entry.vptr, master_id=1)  # noqa: RC004
        assert entry.reserved_by == 1


class TestStatsAndConsistency:
    def test_counters(self):
        table, host = make_table()
        a = insert(table, host, 4)
        insert(table, host, 4)
        table.remove(a.vptr)
        assert table.total_allocations == 2
        assert table.total_frees == 1
        assert table.peak_entries == 2
        assert table.peak_used_bytes == 32
        assert table.live_count() == 1
        assert len(table.entries) == 1

    def test_consistency_check_passes(self):
        table, host = make_table(capacity=1024)
        for dim in (3, 7, 1, 12):
            insert(table, host, dim)
        table.check_consistency()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.integers(min_value=1, max_value=64)),
                    min_size=1, max_size=80))
    def test_live_ranges_never_overlap(self, operations):
        """Property: the paper's Vptr generation never overlaps live allocations."""
        table, host = make_table()
        live = []
        for is_alloc, dim in operations:
            if is_alloc or not live:
                entry = insert(table, host, dim)
                live.append(entry)
            else:
                victim = live.pop(dim % len(live))
                table.remove(victim.vptr)
            table.check_consistency()
        # Used bytes equals the sum of live allocation sizes.
        assert table.used_bytes() == sum(e.size_bytes for e in live)
        # Every live entry can be found back through resolve().
        for entry in live:
            found, offset = table.resolve(entry.vptr)
            assert found is entry and offset == 0
