"""Pytest configuration: make the in-tree ``src`` layout importable.

The project is normally installed with ``pip install -e .``; this fallback
keeps the test suite runnable straight from a source checkout (and on hosts
where editable installs are unavailable, e.g. offline CI images).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
