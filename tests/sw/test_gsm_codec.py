"""Tests for the GSM 06.10 codec blocks and the encoder/decoder round trip."""

import pytest

from repro.sw.gsm import (
    FRAME_BITS,
    FRAME_SAMPLES,
    GsmDecoder,
    GsmEncoder,
    GsmFrameParameters,
    LPC_ORDER,
    LTP_MAX_LAG,
    LTP_MIN_LAG,
    PARAMETERS_PER_FRAME,
    RPE_PULSES,
    SUBFRAMES_PER_FRAME,
    correlation,
    encode_decode,
    generate_silence,
    generate_speech_like,
    pack_frame,
    parameter_bit_widths,
    segmental_snr_db,
    unpack_frame,
)
from repro.sw.gsm.lpc import (
    ShortTermState,
    autocorrelation,
    decode_lar,
    quantize_lar,
    reflection_to_lar,
    schur,
    short_term_analysis,
    short_term_synthesis,
)
from repro.sw.gsm.ltp import ltp_filter, ltp_parameters, ltp_synthesis
from repro.sw.gsm.preprocess import PreprocessState, preprocess_frame
from repro.sw.gsm.rpe import rpe_decode, rpe_encode
from repro.sw.gsm.tables import LAR_MAC, LAR_MIC


def speech_frame(seed=5):
    return generate_speech_like(1, seed=seed)


class TestPreprocess:
    def test_output_length_and_range(self):
        state = PreprocessState()
        output = preprocess_frame(state, speech_frame())
        assert len(output) == FRAME_SAMPLES
        assert all(-32768 <= v <= 32767 for v in output)

    def test_silence_stays_small(self):
        state = PreprocessState()
        output = preprocess_frame(state, [0] * FRAME_SAMPLES)
        assert max(abs(v) for v in output) < 16

    def test_state_carries_across_frames(self):
        state = PreprocessState()
        preprocess_frame(state, speech_frame())
        assert (state.z1, state.l_z2, state.mp) != (0, 0, 0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            preprocess_frame(PreprocessState(), [0] * 10)


class TestLpc:
    def test_autocorrelation_shape(self):
        acf = autocorrelation(speech_frame())
        assert len(acf) == LPC_ORDER + 1
        assert acf[0] >= 0
        assert acf[0] >= max(abs(v) for v in acf[1:])

    def test_autocorrelation_of_silence(self):
        acf = autocorrelation([0] * FRAME_SAMPLES)
        assert acf == [0] * 9

    def test_schur_reflection_in_range(self):
        acf = autocorrelation(speech_frame())
        reflection = schur(acf)
        assert len(reflection) == LPC_ORDER
        assert all(-32768 <= r <= 32767 for r in reflection)

    def test_schur_of_silence_is_zero(self):
        assert schur([0] * 9) == [0] * LPC_ORDER

    def test_lar_quantisation_in_coded_range(self):
        acf = autocorrelation(speech_frame())
        lars = reflection_to_lar(schur(acf))
        larc = quantize_lar(lars)
        for index, coded in enumerate(larc):
            assert 0 <= coded <= LAR_MAC[index] - LAR_MIC[index]

    def test_decode_lar_shape(self):
        larc = [31, 30, 15, 14, 7, 6, 3, 2]
        larpp = decode_lar(larc)
        assert len(larpp) == LPC_ORDER

    def test_short_term_analysis_then_synthesis_roundtrip(self):
        """Analysis followed by synthesis with the same LARs ~ identity."""
        frame = preprocess_frame(PreprocessState(), speech_frame())
        acf = autocorrelation(frame)
        larc = quantize_lar(reflection_to_lar(schur(acf)))
        residual = short_term_analysis(ShortTermState(), larc, frame)
        rebuilt = short_term_synthesis(ShortTermState(), larc, residual)
        assert len(residual) == FRAME_SAMPLES
        assert correlation(frame, rebuilt) > 0.9


class TestLtp:
    def make_residual(self):
        frame = preprocess_frame(PreprocessState(), speech_frame())
        acf = autocorrelation(frame)
        larc = quantize_lar(reflection_to_lar(schur(acf)))
        return short_term_analysis(ShortTermState(), larc, frame)

    def test_lag_in_legal_range(self):
        residual = self.make_residual()
        history = residual[:120]
        lag, gain = ltp_parameters(residual[120:160], history)
        assert LTP_MIN_LAG <= lag <= LTP_MAX_LAG
        assert 0 <= gain <= 3

    def test_periodic_signal_finds_its_period(self):
        period = 60
        history = [int(8000 * ((k % period) < period // 2) - 4000) for k in range(120)]
        subframe = [history[(120 + k) % period + (period * ((120 + k) // period)) % 1]
                    if False else history[(120 + k) % period] for k in range(40)]
        # Build the subframe so it continues the periodic pattern.
        subframe = [history[(120 + k) % period] for k in range(40)]
        lag, gain = ltp_parameters(subframe, history)
        assert lag % period in (0, period - 1, 1) or gain > 0

    def test_filter_and_synthesis_are_inverse(self):
        residual = self.make_residual()
        history = residual[:120]
        subframe = residual[120:160]
        lag, gain = ltp_parameters(subframe, history)
        e, predicted = ltp_filter(subframe, history, lag, gain)
        rebuilt = ltp_synthesis(e, history, lag, gain)
        # e + prediction reproduces the original subframe (up to saturation).
        assert max(abs(a - b) for a, b in zip(rebuilt, subframe)) <= 1

    def test_silence(self):
        lag, gain = ltp_parameters([0] * 40, [0] * 120)
        assert LTP_MIN_LAG <= lag <= LTP_MAX_LAG
        assert gain == 0

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError):
            ltp_parameters([0] * 10, [0] * 120)
        with pytest.raises(ValueError):
            ltp_parameters([0] * 40, [0] * 50)


class TestRpe:
    def test_encode_shapes_and_ranges(self):
        e = [((-1) ** k) * (k * 100 % 3000) for k in range(40)]
        grid, xmaxc, xmc, ep = rpe_encode(e)
        assert 0 <= grid <= 3
        assert 0 <= xmaxc <= 63
        assert len(xmc) == RPE_PULSES
        assert all(0 <= pulse <= 7 for pulse in xmc)
        assert len(ep) == 40

    def test_decode_places_pulses_on_grid(self):
        e = [1000] * 40
        grid, xmaxc, xmc, _ = rpe_encode(e)
        ep = rpe_decode(grid, xmaxc, xmc)
        nonzero = [k for k, v in enumerate(ep) if v != 0]
        assert all((position - grid) % 3 == 0 for position in nonzero)

    def test_silence_encodes_to_small_excitation(self):
        grid, xmaxc, xmc, ep = rpe_encode([0] * 40)
        assert xmaxc <= 1
        assert max(abs(v) for v in ep) <= 200

    def test_reconstruction_tracks_amplitude(self):
        small = rpe_encode([100] * 40)
        large = rpe_encode([20000] * 40)
        assert large[1] > small[1]  # larger block maximum


class TestEncoderDecoder:
    def test_frame_parameter_counts(self):
        encoder = GsmEncoder()
        parameters = encoder.encode_frame(speech_frame())
        words = parameters.flatten()
        assert len(words) == PARAMETERS_PER_FRAME
        assert len(parameters.larc) == LPC_ORDER
        assert len(parameters.pulses) == SUBFRAMES_PER_FRAME

    def test_parameters_fit_their_bit_widths(self):
        encoder = GsmEncoder()
        frames = encoder.encode_stream(generate_speech_like(4, seed=7))
        widths = parameter_bit_widths()
        for frame in frames:
            for value, width in zip(frame.flatten(), widths):
                assert 0 <= value < (1 << width)

    def test_structured_roundtrip(self):
        encoder = GsmEncoder()
        parameters = encoder.encode_frame(speech_frame())
        rebuilt = GsmFrameParameters.from_words(parameters.flatten())
        assert rebuilt.flatten() == parameters.flatten()

    def test_wrong_sizes_rejected(self):
        with pytest.raises(ValueError):
            GsmEncoder().encode_frame([0] * 100)
        with pytest.raises(ValueError):
            GsmEncoder().encode_stream([0] * 170)
        with pytest.raises(ValueError):
            GsmFrameParameters.from_words([0] * 10)

    def test_decoder_output_shape(self):
        frames, reconstructed = encode_decode(generate_speech_like(2))
        assert len(frames) == 2
        assert len(reconstructed) == 2 * FRAME_SAMPLES
        assert all(-32768 <= v <= 32767 for v in reconstructed)

    def test_silence_roundtrip_is_quiet(self):
        _, reconstructed = encode_decode(generate_silence(3))
        assert max(abs(v) for v in reconstructed) < 1024

    def test_speech_roundtrip_preserves_signal(self):
        original = generate_speech_like(6, seed=3)
        _, reconstructed = encode_decode(original)
        assert correlation(original[FRAME_SAMPLES:], reconstructed[FRAME_SAMPLES:]) > 0.5
        assert segmental_snr_db(original, reconstructed) > 0.0

    def test_encoder_is_deterministic(self):
        samples = generate_speech_like(2, seed=11)
        first = GsmEncoder().encode_stream(samples)
        second = GsmEncoder().encode_stream(samples)
        assert [f.flatten() for f in first] == [f.flatten() for f in second]

    def test_decoder_state_matters(self):
        """Decoding the same frame twice with one decoder gives different output
        (the LTP history differs), confirming state is carried along."""
        samples = generate_speech_like(1, seed=2)
        frame = GsmEncoder().encode_frame(samples)
        decoder = GsmDecoder()
        first = decoder.decode_frame(frame)
        second = decoder.decode_frame(frame)
        assert first != second


class TestBitstream:
    def test_pack_unpack_roundtrip(self):
        encoder = GsmEncoder()
        frames = encoder.encode_stream(generate_speech_like(3, seed=21))
        for frame in frames:
            packed = pack_frame(frame)
            assert len(packed) == 33
            assert packed[0] >> 4 == 0xD
            unpacked = unpack_frame(packed)
            assert unpacked.flatten() == frame.flatten()

    def test_frame_bit_budget_is_260(self):
        assert FRAME_BITS == 260
        assert sum(parameter_bit_widths()) == 260

    def test_bad_payloads_rejected(self):
        from repro.sw.gsm import BitstreamError
        with pytest.raises(BitstreamError):
            unpack_frame(b"\x00" * 10)
        with pytest.raises(BitstreamError):
            unpack_frame(b"\x00" * 33)  # wrong magic
