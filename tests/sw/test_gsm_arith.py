"""Tests for the GSM 06.10 fixed-point arithmetic primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sw.gsm import (
    MAX_LONGWORD,
    MAX_WORD,
    MIN_LONGWORD,
    MIN_WORD,
    abs_s,
    add,
    asl,
    asr,
    gsm_div,
    l_add,
    l_asl,
    l_asr,
    l_mult,
    l_sub,
    mult,
    mult_r,
    norm,
    saturate,
    sub,
)

words = st.integers(min_value=MIN_WORD, max_value=MAX_WORD)
longwords = st.integers(min_value=MIN_LONGWORD, max_value=MAX_LONGWORD)


class TestSaturatingAdd:
    def test_plain_addition(self):
        assert add(100, 200) == 300
        assert sub(100, 200) == -100

    def test_positive_saturation(self):
        assert add(30000, 10000) == MAX_WORD
        assert l_add(MAX_LONGWORD, 1) == MAX_LONGWORD

    def test_negative_saturation(self):
        assert add(-30000, -10000) == MIN_WORD
        assert sub(MIN_WORD, 1) == MIN_WORD
        assert l_sub(MIN_LONGWORD, 1) == MIN_LONGWORD

    @given(words, words)
    def test_add_always_in_range(self, a, b):
        assert MIN_WORD <= add(a, b) <= MAX_WORD
        assert MIN_WORD <= sub(a, b) <= MAX_WORD

    @given(longwords, longwords)
    def test_l_add_always_in_range(self, a, b):
        assert MIN_LONGWORD <= l_add(a, b) <= MAX_LONGWORD


class TestMultiplication:
    def test_mult_basic(self):
        assert mult(16384, 16384) == 8192  # 0.5 * 0.5 = 0.25 in Q15
        assert mult(MIN_WORD, MIN_WORD) == MAX_WORD

    def test_mult_r_rounds(self):
        assert mult_r(3, 3) == 0
        assert mult_r(MIN_WORD, MIN_WORD) == MAX_WORD
        assert mult_r(16384, 16384) == 8192

    def test_l_mult(self):
        assert l_mult(2, 3) == 12
        assert l_mult(MIN_WORD, MIN_WORD) == MAX_LONGWORD

    @given(words, words)
    def test_mult_in_range(self, a, b):
        assert MIN_WORD <= mult(a, b) <= MAX_WORD
        assert MIN_WORD <= mult_r(a, b) <= MAX_WORD
        assert MIN_LONGWORD <= l_mult(a, b) <= MAX_LONGWORD


class TestAbsAndShifts:
    def test_abs_s(self):
        assert abs_s(-5) == 5
        assert abs_s(5) == 5
        assert abs_s(MIN_WORD) == MAX_WORD

    def test_asl_asr(self):
        assert asl(1, 3) == 8
        assert asl(MAX_WORD, 1) == MAX_WORD  # saturates
        assert asr(-8, 2) == -2
        assert asr(8, 2) == 2
        assert asl(4, -1) == 2  # negative shift flips direction
        assert asr(4, -1) == 8

    def test_extreme_shifts(self):
        assert asl(5, 20) == MAX_WORD
        assert asl(-5, 20) == MIN_WORD
        assert asl(0, 20) == 0
        assert asr(-1, 20) == -1
        assert asr(1, 20) == 0
        assert l_asl(1, 40) == MAX_LONGWORD
        assert l_asr(-1, 40) == -1

    @given(words, st.integers(min_value=-20, max_value=20))
    def test_asl_in_range(self, a, shift):
        assert MIN_WORD <= asl(a, shift) <= MAX_WORD
        assert MIN_WORD <= asr(a, shift) <= MAX_WORD


class TestNormAndDiv:
    def test_norm_known_values(self):
        assert norm(0x40000000) == 0
        assert norm(0x20000000) == 1
        assert norm(1) == 30
        assert norm(MIN_LONGWORD) == 0
        # Negative values are normalised via their one's complement (~-2 == 1).
        assert norm(-2) == 30

    def test_norm_zero_rejected(self):
        with pytest.raises(ValueError):
            norm(0)

    @given(longwords.filter(lambda v: v != 0))
    def test_norm_normalises(self, value):
        shift = norm(value)
        shifted = value << shift
        if value > 0:
            assert 0x40000000 <= shifted <= MAX_LONGWORD
        else:
            assert MIN_LONGWORD <= shifted < -0x40000000 or value == MIN_LONGWORD

    def test_gsm_div_basic(self):
        assert gsm_div(0, 100) == 0
        assert gsm_div(1, 2) == 16384  # 0.5 in Q15
        assert gsm_div(100, 100) == 32767

    def test_gsm_div_invalid(self):
        with pytest.raises(ValueError):
            gsm_div(5, 0)
        with pytest.raises(ValueError):
            gsm_div(10, 5)
        with pytest.raises(ValueError):
            gsm_div(-1, 5)

    @given(st.integers(min_value=0, max_value=MAX_WORD),
           st.integers(min_value=1, max_value=MAX_WORD))
    def test_gsm_div_in_range(self, num, den):
        if num > den:
            num, den = den, num
        result = gsm_div(num, den)
        assert 0 <= result <= MAX_WORD
        # The fractional quotient approximates num/den in Q15.
        assert abs(result / 32768 - num / den) < 0.001 + 1 / 32768

    def test_saturate(self):
        assert saturate(100000) == MAX_WORD
        assert saturate(-100000) == MIN_WORD
        assert saturate(42) == 42
