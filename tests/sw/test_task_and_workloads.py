"""Tests for the task context, task processor and workload reference functions."""

import pytest

from repro.api import run_tasks
from repro.soc import PlatformConfig, Platform
from repro.sw import ARM7_LIKE, FAST_CORE, CostModel, estimate_loop_cycles
from repro.sw.workloads import fir_reference, matmul_reference
from repro.wrapper import ApiError


class TestCostModel:
    def test_ops_mix(self):
        model = CostModel(alu=1, mul=2, div=20, local_access=1, branch=2)
        assert model.ops(alu=3, mul=2, branch=1) == 3 + 4 + 2

    def test_estimate_loop_cycles(self):
        assert estimate_loop_cycles(0) == 0
        ten = estimate_loop_cycles(10, body_alu=1, body_mul=1, body_local=2)
        assert ten == 10 * ARM7_LIKE.ops(alu=1, mul=1, local=2, branch=1)

    def test_fast_core_is_faster(self):
        assert FAST_CORE.ops(div=1) < ARM7_LIKE.ops(div=1)


class TestReferenceKernels:
    def test_fir_reference_impulse(self):
        taps = [2, 3, 4]
        impulse = [1, 0, 0, 0]
        assert fir_reference(impulse, taps) == [2, 3, 4, 0]

    def test_matmul_reference_identity(self):
        a = [[1, 2], [3, 4]]
        identity = [[1, 0], [0, 1]]
        assert matmul_reference(a, identity) == a


class TestTaskContext:
    def run_probe(self, probe, num_memories=1):
        config = PlatformConfig(num_pes=1, num_memories=num_memories)
        return run_tasks(config, [probe])

    def test_compute_advances_time(self):
        def probe(ctx):
            before = ctx.compute_cycles
            yield from ctx.compute(500)
            return ctx.compute_cycles - before

        report = self.run_probe(probe)
        assert report.results["pe0"] == 500
        assert report.simulated_cycles >= 500

    def test_compute_rejects_negative(self):
        def probe(ctx):
            yield from ctx.compute(-1)

        config = PlatformConfig(num_pes=1)
        platform = Platform(config)
        platform.add_task(probe)
        with pytest.raises(Exception):
            platform.run()

    def test_bad_memory_index(self):
        def probe(ctx):
            yield from ctx.smem(5).alloc(4)

        config = PlatformConfig(num_pes=1, num_memories=1)
        platform = Platform(config)
        platform.add_task(probe)
        with pytest.raises(Exception):
            platform.run()
        assert platform.processors[0].stats.failed

    def test_memory_for_spreads_keys(self):
        def probe(ctx):
            picks = [ctx.memory_for(key) is ctx.smem(key % ctx.memory_count)
                     for key in range(6)]
            yield from ctx.compute(1)
            return all(picks)

        report = self.run_probe(probe, num_memories=3)
        assert report.results["pe0"] is True

    def test_flag_synchronisation(self):
        shared = {}

        def setter(ctx):
            vptr = yield from ctx.smem(0).alloc(4)
            shared["vptr"] = vptr
            yield from ctx.compute(2000)
            yield from ctx.set_flag(vptr, offset=1, value=7)
            return "set"

        def waiter(ctx):
            while "vptr" not in shared:
                yield 32 * ctx.clock_period
            polls = yield from ctx.wait_flag(shared["vptr"], offset=1, expected=7)
            return polls

        config = PlatformConfig(num_pes=2, num_memories=1)
        report = run_tasks(config, [setter, waiter])
        assert report.results["pe0"] == "set"
        assert report.results["pe1"] >= 1

    def test_wait_flag_poll_limit(self):
        def prober(ctx):
            vptr = yield from ctx.smem(0).alloc(4)
            yield from ctx.wait_flag(vptr, expected=9, max_polls=3)

        config = PlatformConfig(num_pes=1)
        platform = Platform(config)
        platform.add_task(prober)
        with pytest.raises(Exception):
            platform.run()

    def test_barrier_releases_all_participants(self):
        shared = {}

        def coordinator(ctx):
            vptr = yield from ctx.smem(0).alloc(4)
            shared["vptr"] = vptr
            yield from ctx.barrier(vptr, participants=3, my_index=0)
            return "done"

        def participant(index):
            def task(ctx):
                while "vptr" not in shared:
                    yield 16 * ctx.clock_period
                yield from ctx.compute(100 * index)
                yield from ctx.barrier(shared["vptr"], participants=3, my_index=index)
                return "done"
            return task

        config = PlatformConfig(num_pes=3, num_memories=1)
        report = run_tasks(config, [coordinator, participant(1), participant(2)])
        assert all(report.results[f"pe{i}"] == "done" for i in range(3))


class TestTaskProcessorStats:
    def test_report_fields(self):
        def probe(ctx):
            vptr = yield from ctx.smem(0).alloc(4)
            yield from ctx.smem(0).write(vptr, 1)
            yield from ctx.compute(100)
            return 42

        config = PlatformConfig(num_pes=1)
        platform = Platform(config)
        processor = platform.add_task(probe)
        platform.run()
        report = processor.report()
        assert report["finished"] and not report["failed"]
        assert report["compute_cycles"] == 100
        assert report["api_calls"] == 2
        assert report["elapsed_cycles"] > 0
        assert processor.stats.result == 42

    def test_failure_is_recorded(self):
        def bad(ctx):
            yield from ctx.smem(0).free(0x9999)  # invalid pointer → ApiError

        config = PlatformConfig(num_pes=1)
        platform = Platform(config)
        processor = platform.add_task(bad)
        with pytest.raises(Exception):
            platform.run()
        assert processor.stats.failed
        assert "ApiError" in processor.stats.error

    def test_start_delay(self):
        def probe(ctx):
            yield from ctx.compute(1)
            return "ok"

        config = PlatformConfig(num_pes=1)
        platform = Platform(config)
        processor = platform.add_task(probe, start_delay_cycles=250)
        platform.run()
        assert processor.stats.started_at >= 250 * config.clock_period
