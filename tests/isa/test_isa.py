"""Tests for the ALM ISA: encoding round trips and the assembler."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AssemblerError,
    BranchOp,
    Cond,
    DpOp,
    EncodingError,
    InsnClass,
    Instruction,
    MemOp,
    SysOp,
    assemble,
    condition_passed,
    decode,
    disassemble,
    encode,
    sign_extend,
)


class TestEncoding:
    def test_dp_imm_roundtrip(self):
        insn = Instruction(Cond.AL, InsnClass.DP_IMM, DpOp.ADD, rd=1, rn=2, imm=100,
                           uses_imm=True)
        decoded = decode(encode(insn))
        assert decoded.klass == InsnClass.DP_IMM
        assert (decoded.rd, decoded.rn, decoded.imm) == (1, 2, 100)

    def test_dp_reg_roundtrip(self):
        insn = Instruction(Cond.NE, InsnClass.DP_REG, DpOp.SUB, rd=3, rn=4, rm=5)
        decoded = decode(encode(insn))
        assert decoded.cond == Cond.NE
        assert (decoded.rd, decoded.rn, decoded.rm) == (3, 4, 5)

    def test_mem_negative_offset(self):
        insn = Instruction(Cond.AL, InsnClass.MEM, MemOp.LDR, rd=0, rn=13, imm=-8,
                           uses_imm=True)
        decoded = decode(encode(insn))
        assert decoded.imm == -8

    def test_branch_negative_offset(self):
        insn = Instruction(Cond.AL, InsnClass.BRANCH, BranchOp.B, imm=-5,
                           uses_imm=True)
        assert decode(encode(insn)).imm == -5

    def test_swi_number(self):
        insn = Instruction(Cond.AL, InsnClass.SYS, SysOp.SWI, imm=42, uses_imm=True)
        assert decode(encode(insn)).imm == 42

    def test_out_of_range_immediates(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Cond.AL, InsnClass.DP_IMM, DpOp.MOV, rd=0, imm=5000,
                               uses_imm=True))
        with pytest.raises(EncodingError):
            encode(Instruction(Cond.AL, InsnClass.MEM, MemOp.LDR, rd=0, rn=0,
                               imm=4000, uses_imm=True))

    def test_invalid_register(self):
        with pytest.raises(ValueError):
            Instruction(Cond.AL, InsnClass.DP_REG, DpOp.MOV, rd=16)

    def test_decode_garbage(self):
        with pytest.raises(EncodingError):
            decode(0xFFFFFFFF)

    def test_disassemble(self):
        word = encode(Instruction(Cond.EQ, InsnClass.DP_IMM, DpOp.ADD, rd=1, rn=1,
                                  imm=4, uses_imm=True))
        assert disassemble(word) == "ADDEQ r1, r1, #4"

    @given(st.sampled_from(list(DpOp)), st.integers(0, 15), st.integers(0, 15),
           st.integers(0, 15), st.sampled_from(list(Cond)))
    def test_dp_reg_roundtrip_property(self, op, rd, rn, rm, cond):
        insn = Instruction(cond, InsnClass.DP_REG, op, rd=rd, rn=rn, rm=rm)
        decoded = decode(encode(insn))
        assert (decoded.cond, decoded.op, decoded.rd, decoded.rn, decoded.rm) == (
            cond, op, rd, rn, rm)

    def test_sign_extend(self):
        assert sign_extend(0xFFF, 12) == -1
        assert sign_extend(0x7FF, 12) == 2047
        assert sign_extend(5, 12) == 5


class TestConditionCodes:
    def test_basic_conditions(self):
        assert condition_passed(Cond.AL, False, False, False, False)
        assert condition_passed(Cond.EQ, False, True, False, False)
        assert not condition_passed(Cond.NE, False, True, False, False)
        assert condition_passed(Cond.GE, True, False, False, True)
        assert condition_passed(Cond.LT, True, False, False, False)
        assert condition_passed(Cond.GT, False, False, False, False)
        assert condition_passed(Cond.LE, False, True, False, False)
        assert condition_passed(Cond.CS, False, False, True, False)
        assert condition_passed(Cond.CC, False, False, False, False)
        assert condition_passed(Cond.MI, True, False, False, False)
        assert condition_passed(Cond.PL, False, False, False, False)
        assert condition_passed(Cond.HI, False, False, True, False)
        assert condition_passed(Cond.LS, False, True, False, False)


class TestAssembler:
    def test_simple_program(self):
        program = assemble("""
            MOV r0, #1
            ADD r0, r0, #2
            HALT
        """)
        assert len(program) == 3
        assert decode(program.words[0]).mnemonic == "MOV"

    def test_labels_and_branches(self):
        program = assemble("""
        start:  MOV r0, #0
        loop:   ADD r0, r0, #1
                CMP r0, #5
                BNE loop
                HALT
        """)
        assert program.labels["start"] == 0
        assert program.labels["loop"] == 1
        branch = decode(program.words[3])
        assert branch.cond == Cond.NE
        assert branch.imm == 1 - 4  # back to 'loop' relative to the next insn

    def test_memory_operands(self):
        program = assemble("""
            LDR r1, [r2, #8]
            STR r1, [r2]
            LDRB r3, [sp, #-4]
        """)
        first = decode(program.words[0])
        assert first.mnemonic == "LDR" and first.imm == 8
        second = decode(program.words[1])
        assert second.mnemonic == "STR" and second.imm == 0
        third = decode(program.words[2])
        assert third.rn == 13 and third.imm == -4

    def test_word_directive_and_comments(self):
        program = assemble("""
            ; a data table
            table: .word 1, 2, 0xFF   ; three words
            MOV r0, #0                @ trailing comment
        """)
        assert program.words[:3] == [1, 2, 0xFF]
        assert program.labels["table"] == 0

    def test_register_aliases(self):
        program = assemble("MOV sp, #128\nMOV lr, #0\nBX lr")
        assert decode(program.words[0]).rd == 13
        assert decode(program.words[1]).rd == 14
        assert decode(program.words[2]).rn == 14

    def test_mul_and_swi(self):
        program = assemble("MUL r0, r1, r2\nSWI #3")
        assert decode(program.words[0]).mnemonic == "MUL"
        assert decode(program.words[1]).imm == 3

    def test_errors(self):
        with pytest.raises(AssemblerError):
            assemble("FROB r0, r1")
        with pytest.raises(AssemblerError):
            assemble("ADD r0, r1")
        with pytest.raises(AssemblerError):
            assemble("B nowhere")
        with pytest.raises(AssemblerError):
            assemble("MOV r99, #1")
        with pytest.raises(AssemblerError):
            assemble("x: MOV r0, #0\nx: MOV r0, #1")

    def test_to_bytes(self):
        program = assemble("MOV r0, #1")
        assert len(program.to_bytes()) == 4
