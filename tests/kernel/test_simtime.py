"""Tests for simulation-time helpers."""

import pytest

from repro.kernel.simtime import (
    MS,
    NS,
    PS,
    SEC,
    US,
    ClockPeriod,
    format_time,
    parse_time,
)


class TestUnits:
    def test_unit_ratios(self):
        assert NS == 1000 * PS
        assert US == 1000 * NS
        assert MS == 1000 * US
        assert SEC == 1000 * MS

    def test_parse_integer_ns(self):
        assert parse_time("10 ns") == 10 * NS

    def test_parse_without_space(self):
        assert parse_time("5us") == 5 * US

    def test_parse_decimal(self):
        assert parse_time("2.5us") == 2500 * NS

    def test_parse_seconds(self):
        assert parse_time("1 s") == SEC
        assert parse_time("1 sec") == SEC

    def test_parse_unknown_unit(self):
        with pytest.raises(ValueError):
            parse_time("3 parsecs")

    def test_parse_missing_number(self):
        with pytest.raises(ValueError):
            parse_time("ns")

    def test_format_round_trip(self):
        assert format_time(parse_time("10 ns")) == "10 ns"
        assert format_time(parse_time("3 ms")) == "3 ms"

    def test_format_non_integral_falls_back_to_ps(self):
        assert format_time(1500) == "1500 ps"

    def test_format_zero(self):
        assert format_time(0) == "0 ps"


class TestClockPeriod:
    def test_from_frequency(self):
        clk = ClockPeriod.from_frequency_mhz(200)
        assert clk.period == 5 * NS

    def test_frequency_round_trip(self):
        clk = ClockPeriod(10 * NS)
        assert clk.frequency_mhz == pytest.approx(100.0)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            ClockPeriod.from_frequency_mhz(0)

    def test_cycles_to_time(self):
        clk = ClockPeriod(10 * NS)
        assert clk.cycles_to_time(3) == 30 * NS

    def test_time_to_cycles(self):
        clk = ClockPeriod(10 * NS)
        assert clk.time_to_cycles(35 * NS) == 3

    def test_immutable(self):
        clk = ClockPeriod(10)
        with pytest.raises(AttributeError):
            clk.period = 20
