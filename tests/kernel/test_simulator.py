"""Tests for the discrete-event scheduler, processes, events and signals."""

import pytest

from repro.kernel import (
    Clock,
    DeltaCycleLimitExceeded,
    Event,
    Module,
    ProcessError,
    SchedulerError,
    Signal,
    Simulator,
    WaitAny,
    WaitDelta,
    WaitEvent,
)


def build(top_builder):
    """Helper: build a top module with ``top_builder(top)`` and a simulator."""
    top = Module("top")
    top_builder(top)
    sim = Simulator(top)
    return sim, top


class TestBasicScheduling:
    def test_timed_wait_advances_time(self):
        log = []

        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                yield 10
                log.append(("a", mod))
                yield 25
                log.append(("b", mod))

            mod.add_process(proc, name="p")

        sim, _ = build(builder)
        sim.run()
        assert [x[0] for x in log] == ["a", "b"]
        assert sim.now == 35

    def test_run_with_duration_limit(self):
        ticks = []

        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                while True:
                    yield 10
                    ticks.append(sim.now)

            mod.add_process(proc)

        sim, _ = build(builder)
        sim.run(95)
        assert ticks == [10, 20, 30, 40, 50, 60, 70, 80, 90]

    def test_two_processes_interleave(self):
        order = []

        def builder(top):
            mod = Module("m", parent=top)

            def fast():
                for _ in range(3):
                    yield 10
                    order.append("fast")

            def slow():
                for _ in range(2):
                    yield 15
                    order.append("slow")

            mod.add_process(fast)
            mod.add_process(slow)

        sim, _ = build(builder)
        sim.run()
        # At t=30 both processes resume; the one whose timer was scheduled
        # first (slow, at t=15) is activated first — deterministic ordering.
        assert order == ["fast", "slow", "fast", "slow", "fast"]

    def test_stop_ends_run(self):
        count = []

        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                while True:
                    yield 10
                    count.append(1)
                    if len(count) == 5:
                        sim.stop()

            mod.add_process(proc)

        sim, _ = build(builder)
        sim.run()
        assert len(count) == 5

    def test_no_top_module_raises(self):
        sim = Simulator()
        with pytest.raises(SchedulerError):
            sim.run()

    def test_run_until(self):
        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                while True:
                    yield 7

            mod.add_process(proc)

        sim, _ = build(builder)
        sim.run_until(100)
        assert sim.now <= 100
        with pytest.raises(SchedulerError):
            sim.run_until(sim.now - 1)

    def test_stats_accumulate(self):
        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                for _ in range(4):
                    yield 5

            mod.add_process(proc)

        sim, _ = build(builder)
        stats = sim.run()
        assert stats.process_activations >= 4
        assert stats.timed_steps >= 4
        assert stats.wallclock_seconds >= 0.0
        assert set(stats.as_dict()) >= {"delta_cycles", "timed_steps"}


class TestEvents:
    def test_event_wait_and_notify(self):
        log = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                yield WaitEvent(ev)
                log.append(("woke", sim.now))

            def notifier():
                yield 42
                ev.notify()

            mod.add_process(waiter)
            mod.add_process(notifier)

        sim, _ = build(builder)
        sim.run()
        assert log == [("woke", 42)]

    def test_yield_event_directly(self):
        log = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                yield ev
                log.append(sim.now)

            def notifier():
                yield 10
                ev.notify()

            mod.add_process(waiter)
            mod.add_process(notifier)

        sim, _ = build(builder)
        sim.run()
        assert log == [10]

    def test_timed_notification(self):
        log = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                yield ev
                log.append(sim.now)

            def notifier():
                yield 5
                ev.notify(20)

            mod.add_process(waiter)
            mod.add_process(notifier)

        sim, _ = build(builder)
        sim.run()
        assert log == [25]

    def test_earlier_notification_overrides_later(self):
        log = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                yield ev
                log.append(sim.now)

            def notifier():
                yield 5
                ev.notify(50)
                ev.notify(10)  # earlier, should win

            mod.add_process(waiter)
            mod.add_process(notifier)

        sim, _ = build(builder)
        sim.run()
        assert log == [15]

    def test_cancelled_notification_does_not_fire(self):
        log = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                yield ev
                log.append(sim.now)

            def canceller():
                yield 5
                ev.notify(10)
                yield 2
                ev.cancel()

            mod.add_process(waiter)
            mod.add_process(canceller)

        sim, _ = build(builder)
        sim.run()
        assert log == []

    def test_wait_any(self):
        log = []

        def builder(top):
            mod = Module("m", parent=top)
            ev_a = mod.add_event(Event("a"))
            ev_b = mod.add_event(Event("b"))

            def waiter():
                yield WaitAny(ev_a, ev_b)
                log.append(sim.now)

            def notifier():
                yield 30
                ev_b.notify()

            mod.add_process(waiter)
            mod.add_process(notifier)

        sim, _ = build(builder)
        sim.run()
        assert log == [30]

    def test_negative_delay_rejected(self):
        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def proc():
                yield 1
                ev.notify(-3)

            mod.add_process(proc)

        sim, _ = build(builder)
        with pytest.raises(ProcessError):
            sim.run()


class TestSignals:
    def test_delta_update_semantics(self):
        observed = []

        def builder(top):
            mod = Module("m", parent=top)
            sig = mod.add_signal(Signal(0, name="s"))

            def writer():
                yield 10
                sig.write(7)
                observed.append(("just after write", sig.read()))
                yield 0
                observed.append(("next delta", sig.read()))

            mod.add_process(writer)

        sim, _ = build(builder)
        sim.run()
        assert observed == [("just after write", 0), ("next delta", 7)]

    def test_changed_event_fires(self):
        changes = []

        def builder(top):
            mod = Module("m", parent=top)
            sig = mod.add_signal(Signal(0, name="s"))

            def watcher():
                while True:
                    yield sig.changed_event
                    changes.append((sim.now, sig.read()))

            def writer():
                yield 5
                sig.write(1)
                yield 5
                sig.write(1)  # no change → no event
                yield 5
                sig.write(2)

            mod.add_process(watcher)
            mod.add_process(writer)

        sim, _ = build(builder)
        sim.run()
        assert changes == [(5, 1), (15, 2)]

    def test_posedge_negedge(self):
        edges = []

        def builder(top):
            mod = Module("m", parent=top)
            sig = mod.add_signal(Signal(False, name="s"))

            def pos_watch():
                while True:
                    yield sig.posedge_event
                    edges.append(("pos", sim.now))

            def neg_watch():
                while True:
                    yield sig.negedge_event
                    edges.append(("neg", sim.now))

            def writer():
                yield 10
                sig.write(True)
                yield 10
                sig.write(False)

            mod.add_process(pos_watch)
            mod.add_process(neg_watch)
            mod.add_process(writer)

        sim, _ = build(builder)
        sim.run()
        assert ("pos", 10) in edges
        assert ("neg", 20) in edges

    def test_force_bypasses_delta(self):
        sig = Signal(3, name="s")
        sig.force(9)
        assert sig.read() == 9

    def test_write_count(self):
        def builder(top):
            mod = Module("m", parent=top)
            sig = mod.add_signal(Signal(0, name="s"))
            builder.sig = sig

            def writer():
                for value in (1, 2, 2, 3):
                    yield 5
                    sig.write(value)

            mod.add_process(writer)

        sim, _ = build(builder)
        sim.run()
        assert builder.sig.write_count == 3  # the duplicate write is filtered


class TestMethodProcesses:
    def test_method_process_runs_on_each_trigger(self):
        counts = {"n": 0}

        def builder(top):
            clock = Clock("clk", period=10, parent=top)
            mod = Module("m", parent=top)

            def on_edge():
                counts["n"] += 1

            mod.add_method(on_edge, sensitivity=[clock.posedge_event])

        sim, _ = build(builder)
        sim.run(100)
        assert counts["n"] >= 9

    def test_method_requires_sensitivity(self):
        mod = Module("m")
        with pytest.raises(Exception):
            mod.add_method(lambda: None, sensitivity=[])


class TestErrorHandling:
    def test_process_exception_is_wrapped(self):
        def builder(top):
            mod = Module("m", parent=top)

            def bad():
                yield 5
                raise ValueError("boom")

            mod.add_process(bad)

        sim, _ = build(builder)
        with pytest.raises(ProcessError):
            sim.run()

    def test_yielding_garbage_raises(self):
        def builder(top):
            mod = Module("m", parent=top)

            def bad():
                yield "not a wait request"

            mod.add_process(bad)

        sim, _ = build(builder)
        with pytest.raises(ProcessError):
            sim.run()

    def test_delta_cycle_limit(self):
        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("ping"))

            def ping_pong():
                while True:
                    ev.notify(0)
                    yield WaitDelta()

            mod.add_process(ping_pong)

        sim, _ = build(builder)
        with pytest.raises(DeltaCycleLimitExceeded):
            sim.run()


class TestClock:
    def test_clock_period_and_cycles(self):
        def builder(top):
            builder.clock = Clock("clk", period=10, parent=top)

        sim, _ = build(builder)
        sim.run(105)
        assert builder.clock.cycle == pytest.approx(10, abs=1)

    def test_clock_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Clock("clk", period=1)
        with pytest.raises(ValueError):
            Clock("clk", period=10, duty_cycle=0.0)

    def test_clocked_counter(self):
        class Counter(Module):
            def __init__(self, name, clock, parent=None):
                super().__init__(name, parent)
                self.value = self.add_signal(Signal(0, name="value"))
                self.add_method(self.tick, sensitivity=[clock.posedge_event])

            def tick(self):
                self.value.write(self.value.read() + 1)

        top = Module("top")
        clock = Clock("clk", period=10, parent=top)
        counter = Counter("counter", clock, parent=top)
        sim = Simulator(top)
        sim.run(100)
        assert counter.value.read() >= 9


class TestModuleHierarchy:
    def test_full_names(self):
        top = Module("top")
        mid = Module("mid", parent=top)
        leaf = Module("leaf", parent=mid)
        assert leaf.full_name == "top.mid.leaf"
        assert top.find("mid.leaf") is leaf

    def test_duplicate_child_name_rejected(self):
        top = Module("top")
        Module("a", parent=top)
        with pytest.raises(Exception):
            Module("a", parent=top)

    def test_descendants_order(self):
        top = Module("top")
        a = Module("a", parent=top)
        b = Module("b", parent=top)
        c = Module("c", parent=a)
        names = [m.name for m in top.descendants()]
        assert names == ["top", "a", "c", "b"]
        assert a in top.children and b in top.children and c not in top.children

    def test_find_missing_raises(self):
        top = Module("top")
        with pytest.raises(Exception):
            top.find("ghost")
