"""TransactionLog capacity semantics: keep-first vs. the ring buffer."""

import pytest

from repro.kernel.trace import TransactionLog


def _fill(log, count):
    for index in range(count):
        log.record(index * 10, "src", "op", seq=index)


class TestKeepFirst:
    def test_default_keeps_the_start_and_counts_drops(self):
        log = TransactionLog(capacity=3)
        assert log.keep == "first"
        _fill(log, 5)
        assert len(log) == 3
        assert [record.fields["seq"] for record in log.records] == [0, 1, 2]
        assert log.dropped == 2

    def test_unbounded_log_never_drops(self):
        log = TransactionLog()
        _fill(log, 10)
        assert len(log) == 10
        assert log.dropped == 0


class TestKeepLast:
    def test_ring_buffer_keeps_the_end_and_counts_drops(self):
        log = TransactionLog(capacity=3, keep="last")
        _fill(log, 5)
        assert len(log) == 3
        assert [record.fields["seq"] for record in log.records] == [2, 3, 4]
        assert log.dropped == 2

    def test_filter_and_kinds_work_over_the_deque(self):
        log = TransactionLog(capacity=2, keep="last")
        log.record(0, "a", "read")
        log.record(1, "b", "write")
        log.record(2, "a", "read")
        assert [record.source for record in log.filter(kind="read")] == ["a"]
        assert list(log.kinds()) == ["write", "read"]

    def test_below_capacity_drops_nothing(self):
        log = TransactionLog(capacity=8, keep="last")
        _fill(log, 3)
        assert len(log) == 3
        assert log.dropped == 0


class TestValidation:
    def test_rejects_unknown_keep(self):
        with pytest.raises(ValueError):
            TransactionLog(capacity=4, keep="middle")

    def test_keep_last_requires_capacity(self):
        with pytest.raises(ValueError):
            TransactionLog(keep="last")
