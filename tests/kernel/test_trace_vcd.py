"""Golden-file and round-trip coverage for SignalTracer's VCD dump.

The dump itself was untested: these tests pin the exact VCD text produced
by a deterministic run against a committed golden file, and independently
re-parse the dump to verify it reconstructs the recorded value changes
(so the format stays readable by standard VCD consumers).
"""

import os
import re

from repro.kernel import Module, Signal, Simulator
from repro.kernel.trace import SignalTracer

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden_trace.vcd")


def build_traced_run():
    """A deterministic two-signal run: a counter and a toggling flag."""
    top = Module("top")
    mod = Module("m", parent=top)
    counter = mod.add_signal(Signal(0, name="counter"))
    flag = mod.add_signal(Signal(False, name="flag"))

    tracer_box = {}

    def writer():
        for step in range(1, 4):
            yield 10
            counter.write(step * 5)
            flag.write(step % 2 == 0)
            yield 0
            tracer_box["tracer"].sample()

    mod.add_process(writer)
    sim = Simulator(top)
    tracer = SignalTracer(sim)
    tracer_box["tracer"] = tracer
    tracer.watch(counter)
    tracer.watch(flag)
    sim.run()
    return tracer


def parse_vcd(text):
    """Minimal VCD reader: returns ``{signal_name: [(time, value), ...]}``.

    Understands the subset SignalTracer emits: ``$var`` definitions,
    ``#<time>`` stamps, ``b<binary> <id>`` vectors, ``<0|1><id>`` scalars
    and ``s<string> <id>`` strings.
    """
    names = {}
    for match in re.finditer(r"\$var wire \d+ (\S+) (\S+) \$end", text):
        names[match.group(1)] = match.group(2)
    histories = {name: [] for name in names.values()}
    time = None
    body = text.split("$enddefinitions $end", 1)[1]
    for token in body.strip().splitlines():
        token = token.strip()
        if not token:
            continue
        if token.startswith("#"):
            time = int(token[1:])
        elif token.startswith("b"):
            bits, ident = token[1:].split()
            histories[names[ident]].append((time, int(bits, 2)))
        elif token.startswith("s"):
            value, ident = token[1:].split()
            histories[names[ident]].append((time, value))
        else:
            value, ident = token[0], token[1:]
            histories[names[ident]].append((time, int(value)))
    return histories


class TestVcdGolden:
    def test_dump_matches_golden_file(self):
        text = build_traced_run().to_vcd()
        with open(GOLDEN_PATH) as handle:
            golden = handle.read()
        assert text == golden, (
            "VCD output changed; if deliberate, regenerate "
            "tests/kernel/golden_trace.vcd and explain the delta"
        )

    def test_reparse_round_trip_reconstructs_history(self):
        tracer = build_traced_run()
        histories = parse_vcd(tracer.to_vcd())
        assert histories["counter"] == [(0, 0), (10, 5), (20, 10), (30, 15)]
        # Booleans dump as scalar 0/1 changes.
        assert histories["flag"] == [(0, 0), (20, 1), (30, 0)]
        # The re-parsed histories must agree with the tracer's own record
        # (booleans modulo int coercion).
        assert histories["counter"] == tracer.history("counter")
        assert histories["flag"] == [(t, int(v))
                                     for t, v in tracer.history("flag")]

    def test_header_shape(self):
        text = build_traced_run().to_vcd()
        assert text.startswith("$timescale 1ps $end\n")
        assert "$scope module trace $end" in text
        assert "$enddefinitions $end" in text
        assert text.endswith("\n")


class TestManySignals:
    """Identifier generation beyond the 94 printable single characters."""

    @staticmethod
    def _traced_run(count):
        top = Module("top")
        mod = Module("m", parent=top)
        signals = [mod.add_signal(Signal(0, name=f"sig{index}"))
                   for index in range(count)]

        def writer():
            yield 10
            for index, signal in enumerate(signals):
                signal.write(index + 1)
            yield 0
            box["tracer"].sample()

        mod.add_process(writer)
        sim = Simulator(top)
        tracer = SignalTracer(sim)
        box = {"tracer": tracer}
        for signal in signals:
            tracer.watch(signal)
        sim.run()
        return tracer

    def test_identifiers_stay_unique_and_printable_beyond_93(self):
        tracer = self._traced_run(200)
        text = tracer.to_vcd()
        idents = re.findall(r"\$var wire \d+ (\S+) \S+ \$end", text)
        assert len(idents) == 200
        assert len(set(idents)) == 200, "identifier collision"
        for ident in idents:
            assert all(33 <= ord(char) <= 126 for char in ident), ident
        # The first 94 stay single characters (golden compatibility).
        assert all(len(ident) == 1 for ident in idents[:94])
        assert all(len(ident) == 2 for ident in idents[94:])

    def test_round_trip_with_200_signals(self):
        tracer = self._traced_run(200)
        histories = parse_vcd(tracer.to_vcd())
        assert len(histories) == 200
        for index in range(200):
            assert histories[f"sig{index}"] == [(0, 0), (10, index + 1)]

    def test_identifier_sequence_is_bijective(self):
        seen = {SignalTracer._vcd_identifier(index) for index in range(3000)}
        assert len(seen) == 3000
