"""Tests for the cycle-true FSM helper and the tracing utilities."""

import pytest

from repro.kernel import CycleTrueFsm, FsmStateError, Module, Signal, Simulator
from repro.kernel.trace import SignalTracer, TransactionLog


class TestCycleTrueFsm:
    def make_counter_fsm(self, threshold=3):
        state = {"count": 0}
        fsm = CycleTrueFsm("IDLE")

        def idle():
            state["count"] = 0
            return "COUNTING"

        def counting():
            state["count"] += 1
            if state["count"] >= threshold:
                return "DONE"
            return None

        def done():
            return "IDLE"

        fsm.state("IDLE", idle)
        fsm.state("COUNTING", counting)
        fsm.state("DONE", done)
        return fsm, state

    def test_transitions(self):
        fsm, _ = self.make_counter_fsm()
        seq = [fsm.step() for _ in range(6)]
        assert seq == ["COUNTING", "COUNTING", "COUNTING", "DONE", "IDLE", "COUNTING"]

    def test_occupancy_counts(self):
        fsm, _ = self.make_counter_fsm()
        for _ in range(10):
            fsm.step()
        assert fsm.cycles == 10
        assert sum(fsm.occupancy.values()) == 10
        assert fsm.occupancy["COUNTING"] > fsm.occupancy["IDLE"]

    def test_occupancy_fraction(self):
        fsm, _ = self.make_counter_fsm()
        assert fsm.occupancy_fraction("IDLE") == 0.0
        for _ in range(5):
            fsm.step()
        assert 0.0 <= fsm.occupancy_fraction("COUNTING") <= 1.0

    def test_duplicate_state_rejected(self):
        fsm = CycleTrueFsm("A")
        fsm.state("A", lambda: None)
        with pytest.raises(FsmStateError):
            fsm.state("A", lambda: None)

    def test_unknown_next_state_rejected(self):
        fsm = CycleTrueFsm("A")
        fsm.state("A", lambda: "GHOST")
        with pytest.raises(FsmStateError):
            fsm.step()

    def test_unregistered_current_state_rejected(self):
        fsm = CycleTrueFsm("MISSING")
        with pytest.raises(FsmStateError):
            fsm.step()

    def test_reset_returns_to_initial(self):
        fsm, _ = self.make_counter_fsm()
        fsm.step()
        assert fsm.current_state != "IDLE"
        fsm.reset()
        assert fsm.current_state == "IDLE"

    def test_transition_counter(self):
        fsm, _ = self.make_counter_fsm()
        for _ in range(8):
            fsm.step()
        assert fsm.transitions[("IDLE", "COUNTING")] >= 1
        assert fsm.transitions[("COUNTING", "DONE")] >= 1


class TestSignalTracer:
    def test_records_changes(self):
        top = Module("top")
        mod = Module("m", parent=top)
        sig = mod.add_signal(Signal(0, name="s"))

        def writer():
            for value in (1, 2, 3):
                yield 10
                sig.write(value)
                yield 0
                tracer.sample()

        mod.add_process(writer)
        sim = Simulator(top)
        tracer = SignalTracer(sim)
        tracer.watch(sig)
        sim.run()
        history = tracer.history("s")
        assert [v for _, v in history] == [0, 1, 2, 3]

    def test_vcd_output_contains_definitions(self):
        top = Module("top")
        mod = Module("m", parent=top)
        sig = mod.add_signal(Signal(False, name="flag"))
        sim = Simulator(top)
        tracer = SignalTracer(sim)
        tracer.watch(sig)
        text = tracer.to_vcd()
        assert "$enddefinitions" in text
        assert "flag" in text


class TestTransactionLog:
    def test_record_and_filter(self):
        log = TransactionLog()
        log.record(10, "bus", "read", addr=4)
        log.record(20, "bus", "write", addr=8)
        log.record(30, "mem", "read", addr=4)
        assert len(log) == 3
        assert len(log.filter(kind="read")) == 2
        assert len(log.filter(source="bus")) == 2
        assert len(log.filter(kind="read", source="mem")) == 1
        assert log.kinds() == ["read", "write"]

    def test_capacity_limit(self):
        log = TransactionLog(capacity=2)
        for i in range(5):
            log.record(i, "x", "k")
        assert len(log) == 2
        assert log.dropped == 3
