"""Event notification semantics: override, cancel and end-time invariants.

Covers the corner cases the epoch-checked queues were introduced for:

* cancel-then-renotify (a cancelled notification must never fire, the
  renotified one must fire exactly once at the right time);
* delta-overrides-timed (the stale timed heap entry must not fire — the
  historical double-wake);
* earlier-timed-overrides-later (with the stale later entry ignored);
* ``run(duration)`` / ``run_until`` end-time invariants: ``now`` always
  lands on the requested deadline (SystemC ``sc_start`` semantics), and
  ``stats.end_time`` equals the final ``now``.
"""

import pytest

from repro.kernel import Event, Module, Simulator, WaitCycles, WaitDelta


def build(top_builder):
    top = Module("top")
    top_builder(top)
    sim = Simulator(top)
    return sim


class TestCancelAndRenotify:
    def test_cancelled_delta_notification_does_not_fire(self):
        wakes = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                yield ev
                wakes.append(sim.now)

            def driver():
                yield 5
                ev.notify(0)
                ev.cancel()  # same evaluation: the delta must not fire
                yield 10

            mod.add_process(waiter)
            mod.add_process(driver)

        sim = build(builder)
        sim.run()
        assert wakes == []

    def test_cancel_then_renotify_timed_fires_once_at_new_time(self):
        wakes = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                while True:
                    yield ev
                    wakes.append(sim.now)

            def driver():
                yield 2
                ev.notify(10)   # heap entry @12
                yield 1
                ev.cancel()     # @12 is now stale
                ev.notify(4)    # fires @7
                yield 20

            mod.add_process(waiter)
            mod.add_process(driver)

        sim = build(builder)
        sim.run()
        assert wakes == [7]

    def test_cancel_then_renotify_delta_fires_once(self):
        wakes = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                while True:
                    yield ev
                    wakes.append(sim.now)

            def driver():
                yield 3
                ev.notify(0)
                ev.cancel()
                ev.notify(0)  # only this delta notification may fire
                yield 5

            mod.add_process(waiter)
            mod.add_process(driver)

        sim = build(builder)
        sim.run()
        assert wakes == [3]


class TestNotificationOverrides:
    def test_delta_overrides_timed_no_double_wake(self):
        """The historical double-wake: a delta override leaves a stale timed
        heap entry behind; when it pops it must not fire the event again."""
        wakes = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))
            builder.ev = ev

            def watcher():
                wakes.append(sim.now)

            # Static sensitivity: *every* fire of the event wakes the
            # watcher, so a double fire is observable as a double wake.
            def arm():
                yield 2
                ev.notify(10)   # timed: heap entry @12
                ev.notify(0)    # delta override: fires next delta @2
                yield 20        # run past the stale @12 entry

            method = mod.add_method(watcher, sensitivity=[ev])
            mod.add_process(arm)
            builder.method = method

        sim = build(builder)
        sim.run()
        # One wake at elaboration (SystemC runs methods once at time zero)
        # plus exactly one notification wake at t=2 — nothing at t=12.
        assert wakes == [0, 2]
        # White-box: the stale heap entry's epoch no longer matches.
        stale = [entry for entry in sim._timed_events._heap
                 if entry[2] is builder.ev]
        assert all(entry[3] != builder.ev._epoch for entry in stale)

    def test_earlier_timed_overrides_later_stale_entry_ignored(self):
        wakes = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                while True:
                    yield ev
                    wakes.append(sim.now)

            def driver():
                yield 1
                ev.notify(50)  # heap entry @51
                ev.notify(5)   # earlier wins: fires @6
                yield 100      # run past the stale @51 entry

            mod.add_process(waiter)
            mod.add_process(driver)

        sim = build(builder)
        sim.run()
        assert wakes == [6]

    def test_later_timed_notification_is_ignored(self):
        wakes = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                while True:
                    yield ev
                    wakes.append(sim.now)

            def driver():
                yield 1
                ev.notify(5)    # fires @6
                ev.notify(50)   # later: ignored entirely
                yield 100

            mod.add_process(waiter)
            mod.add_process(driver)

        sim = build(builder)
        sim.run()
        assert wakes == [6]

    def test_delta_pending_wins_over_new_timed(self):
        wakes = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def waiter():
                while True:
                    yield ev
                    wakes.append(sim.now)

            def driver():
                yield 4
                ev.notify(0)    # delta pending
                ev.notify(3)    # timed after a pending delta: ignored
                yield 10

            mod.add_process(waiter)
            mod.add_process(driver)

        sim = build(builder)
        sim.run()
        assert wakes == [4]


class TestRunEndTimeInvariants:
    def test_run_duration_clamps_now_when_activity_drains(self):
        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                yield 10  # single event, then nothing

            mod.add_process(proc)

        sim = build(builder)
        stats = sim.run(95)
        assert sim.now == 95
        assert stats.end_time == 95

    def test_run_until_lands_exactly_on_the_deadline(self):
        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                while True:
                    yield 7

            mod.add_process(proc)

        sim = build(builder)
        stats = sim.run_until(100)
        assert sim.now == 100
        assert stats.end_time == 100
        # A second run continues from the clamped time.
        stats = sim.run(14)
        assert sim.now == 114
        assert stats.end_time == 114

    def test_run_without_duration_ends_at_last_activity(self):
        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                yield 10
                yield 25

            mod.add_process(proc)

        sim = build(builder)
        stats = sim.run()
        assert sim.now == 35
        assert stats.end_time == 35

    def test_stop_suppresses_the_deadline_clamp(self):
        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                while True:
                    yield 10
                    if sim.now >= 30:
                        sim.stop()

            mod.add_process(proc)

        sim = build(builder)
        stats = sim.run(1000)
        assert sim.now == 30
        assert stats.end_time == 30

    def test_end_time_recorded_after_clamp(self):
        """stats.end_time must equal the *final* now, not the pre-clamp one
        (it used to be recorded before the post-loop clamp ran)."""
        def builder(top):
            mod = Module("m", parent=top)

            def proc():
                yield 3

            mod.add_process(proc)

        sim = build(builder)
        stats = sim.run(50)
        assert (sim.now, stats.end_time) == (50, 50)


class TestWaitCycles:
    def test_wait_cycles_precomputes_duration(self):
        wait = WaitCycles(5, period=10)
        assert wait.duration == 50
        with pytest.raises(ValueError):
            WaitCycles(-1, period=10)
        with pytest.raises(ValueError):
            WaitCycles(1, period=0)

    def test_reused_wait_cycles_object_schedules_every_yield(self):
        times = []

        def builder(top):
            mod = Module("m", parent=top)
            wait = WaitCycles(3, period=10)

            def proc():
                for _ in range(4):
                    yield wait  # the same object, reused across yields
                    times.append(sim.now)

            mod.add_process(proc)

        sim = build(builder)
        sim.run()
        assert times == [30, 60, 90, 120]

    def test_clock_wait_cycles_cache(self):
        from repro.kernel import Clock

        clock = Clock("clk", period=10)
        wait_a = clock.wait_cycles(4)
        wait_b = clock.wait_cycles(4)
        assert wait_a is wait_b
        assert wait_a.duration == 40

    def test_task_context_wait_cycles_cache(self):
        from repro.sw.task import TaskContext

        class _StubApi:
            calls = 0

        ctx = TaskContext(pe_id=0, apis=[_StubApi()], clock_period=10)
        assert ctx.wait_cycles(2) is ctx.wait_cycles(2)
        assert ctx.wait_cycles(2).duration == 20


class TestDeltaWaitOrdering:
    def test_direct_delta_wait_interleaves_with_event_deltas(self):
        """Delta wakes preserve notification order across both mechanisms."""
        order = []

        def builder(top):
            mod = Module("m", parent=top)
            ev = mod.add_event(Event("go"))

            def event_waiter():
                yield ev
                order.append("event")

            def delta_waiter():
                yield 1
                yield WaitDelta()
                order.append("delta")

            def driver():
                yield 1
                ev.notify(0)

            mod.add_process(event_waiter)
            mod.add_process(delta_waiter)
            mod.add_process(driver)

        sim = build(builder)
        sim.run()
        # delta_waiter's WaitDelta is scheduled during its activation, which
        # precedes driver's notify(0) in the same evaluation phase — so the
        # direct delta wake fires first, exactly as the per-wait waker event
        # did before the fast path.
        assert order == ["delta", "event"]