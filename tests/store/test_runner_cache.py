"""Store-backed ExperimentRunner: incremental sweeps, resume, telemetry."""

import json
import os
import subprocess
import sys
import textwrap
import time
from collections import Counter

from repro.api import (
    ExperimentRunner,
    PlatformBuilder,
    Scenario,
    scenario_grid,
)
from repro.store import ResultStore, SweepMonitor, read_events

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def _base_config():
    return PlatformBuilder().pes(1).wrapper_memories(1).build()


def _grid(points=4):
    samples = [8, 12, 16, 20][:points]
    return scenario_grid("fir", _base_config(), "fir",
                         param_grid={"num_samples": samples},
                         params={"seed": 3}, seed=7)


def _terminal_counts(events):
    return Counter(e.kind for e in events
                   if e.kind in ("cache_hit", "finished", "failed", "timeout"))


_HOST_TIMING_KEYS = ("wallclock_seconds", "simulation_speed", "host_seconds")


def _scrub_timing(value):
    """Drop host-clock measurements; everything else must be deterministic."""
    if isinstance(value, dict):
        return {k: _scrub_timing(v) for k, v in value.items()
                if k not in _HOST_TIMING_KEYS}
    if isinstance(value, list):
        return [_scrub_timing(item) for item in value]
    return value


class TestCachedRuns:
    def test_warm_rerun_is_all_hits_and_byte_identical(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        cold = ExperimentRunner(_grid(), store=store).run()
        assert [r.cached for r in cold] == [False] * 4
        assert store.stats["puts"] == 4
        warm = ExperimentRunner(_grid(), store=store).run()
        assert [r.cached for r in warm] == [True] * 4
        # Zero simulation work: the second pass only read the store.
        assert store.stats["puts"] == 4
        cold_json = json.dumps([r.as_dict() for r in cold], default=str)
        warm_json = json.dumps([r.as_dict() for r in warm], default=str)
        assert cold_json == warm_json

    def test_serial_cold_vs_sharded_warm_equivalence(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        serial = ExperimentRunner(_grid(), store=store).run()
        sharded = ExperimentRunner(_grid(), shards=2, store=store).run()
        assert [r.cached for r in sharded] == [True] * 4
        for a, b in zip(serial, sharded):
            assert a.report.as_dict() == b.report.as_dict()

    def test_sharded_cold_matches_serial_cold(self, tmp_path):
        serial = ExperimentRunner(
            _grid(), store=str(tmp_path / "a.sqlite")).run()
        sharded = ExperimentRunner(
            _grid(), shards=2, store=str(tmp_path / "b.sqlite")).run()
        for a, b in zip(serial, sharded):
            assert (_scrub_timing(a.report.as_dict())
                    == _scrub_timing(b.report.as_dict()))
            assert a.cache_key == b.cache_key

    def test_partial_store_runs_only_missing(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        grid = _grid()
        ExperimentRunner(grid[:2], store=store).run()
        monitor = SweepMonitor(live=False)
        results = ExperimentRunner(grid, store=store, monitor=monitor).run()
        assert [r.cached for r in results] == [True, True, False, False]
        assert all(r.passed for r in results)
        counts = _terminal_counts(monitor.events)
        assert counts == {"cache_hit": 2, "finished": 2}

    def test_config_change_invalidates(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        ExperimentRunner(_grid(), store=store).run()
        changed = scenario_grid(
            "fir", PlatformBuilder().pes(2).wrapper_memories(1).build(),
            "fir", param_grid={"num_samples": [8, 12, 16, 20]},
            params={"seed": 3}, seed=7)
        results = ExperimentRunner(changed, store=store).run()
        assert [r.cached for r in results] == [False] * 4

    def test_inline_workload_is_never_cached(self, tmp_path):
        def factory(config, **params):
            def task(ctx):
                yield from ctx.compute(10)
            return [task]

        scenario = Scenario(name="inline", config=_base_config(),
                            workload=factory)
        store = ResultStore(str(tmp_path / "s.sqlite"))
        first = ExperimentRunner([scenario], store=store).run()[0]
        second = ExperimentRunner([scenario], store=store).run()[0]
        assert first.cache_key is None and second.cache_key is None
        assert not first.cached and not second.cached
        assert len(store) == 0

    def test_keep_platforms_bypasses_cache(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        grid = _grid(1)
        ExperimentRunner(grid, store=store).run()
        [result] = ExperimentRunner(grid, store=store,
                                    keep_platforms=True).run()
        assert not result.cached
        assert result.platform is not None

    def test_errors_are_not_cached(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        scenario = Scenario(name="broken", config=_base_config(),
                            workload="fir",
                            params={"no_such_param": True})
        first = ExperimentRunner([scenario], store=store).run()[0]
        assert first.error is not None
        assert len(store) == 0
        second = ExperimentRunner([scenario], store=store).run()[0]
        assert not second.cached  # retried, not replayed

    def test_check_failures_are_cached(self, tmp_path):
        def failing_check(report):
            return "always unhappy"

        store = ResultStore(str(tmp_path / "s.sqlite"))
        scenario = Scenario(name="checked", config=_base_config(),
                            workload="fir", params={"num_samples": 8},
                            checks=(failing_check,))
        first = ExperimentRunner([scenario], store=store).run()[0]
        assert not first.passed and first.error is None
        assert len(store) == 1
        second = ExperimentRunner([scenario], store=store).run()[0]
        assert second.cached
        assert second.failures == first.failures


class TestResumeAfterKill:
    def test_killed_sweep_resumes_missing_scenarios_only(self, tmp_path):
        """A sweep hard-killed mid-grid resumes: cached scenarios replay,
        only the missing ones simulate, and the resume pass's event log
        accounts for every scenario exactly once."""
        store_path = str(tmp_path / "s.sqlite")
        script = textwrap.dedent(f"""
            import os
            from repro.api import ExperimentRunner, PlatformBuilder, scenario_grid
            from repro.store import ResultStore, SweepMonitor

            class KillAfterTwo(SweepMonitor):
                def emit(self, event):
                    super().emit(event)
                    done = sum(1 for e in self.events if e.kind == "finished")
                    if done >= 2:
                        os._exit(137)  # hard kill, no store shutdown

            config = PlatformBuilder().pes(1).wrapper_memories(1).build()
            grid = scenario_grid("fir", config, "fir",
                                 param_grid={{"num_samples": [8, 12, 16, 20]}},
                                 params={{"seed": 3}}, seed=7)
            store = ResultStore({store_path!r})
            ExperimentRunner(grid, store=store,
                             monitor=KillAfterTwo(live=False)).run()
            raise SystemExit("sweep was supposed to die mid-grid")
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        completed = subprocess.run([sys.executable, "-c", script],
                                   capture_output=True, text=True,
                                   timeout=120, env=env)
        assert completed.returncode == 137, completed.stderr
        with ResultStore(store_path) as peek:
            assert len(peek) == 2  # incremental puts survived the kill

        log_path = str(tmp_path / "resume.events.jsonl")
        monitor = SweepMonitor(log_path=log_path, live=False)
        results = ExperimentRunner(_grid(), store=store_path,
                                   monitor=monitor).run()
        monitor.close()
        assert [r.cached for r in results] == [True, True, False, False]
        assert all(r.passed for r in results)
        events = read_events(log_path)
        scheduled = Counter(e.scenario for e in events
                            if e.kind == "scheduled")
        terminal = Counter(e.scenario for e in events
                           if e.kind in ("cache_hit", "finished",
                                         "failed", "timeout"))
        names = [s.name for s in _grid()]
        assert scheduled == Counter(names)  # each exactly once
        assert terminal == Counter(names)   # each exactly once
        assert _terminal_counts(events) == {"cache_hit": 2, "finished": 2}


class TestShardedScheduler:
    def test_no_busy_poll_interval_remains(self):
        import repro.api.runner as runner_module

        assert not hasattr(runner_module, "_POLL_INTERVAL_S")

    def test_timeout_still_enforced_with_wait(self):
        def spin(config, **params):
            def task(ctx):
                while True:
                    yield from ctx.compute(1000)
            return [task]

        scenarios = [
            Scenario(name="stuck", config=_base_config(), workload=spin),
            _grid(1)[0],
        ]
        start = time.monotonic()
        results = ExperimentRunner(scenarios, shards=2, timeout_s=1.5).run()
        elapsed = time.monotonic() - start
        assert results[0].timed_out
        assert results[1].passed
        # connection.wait sleeps until the deadline instead of polling, and
        # the deadline still fires promptly.
        assert elapsed < 15

    def test_sharded_workers_stream_started_events(self, tmp_path):
        monitor = SweepMonitor(live=False)
        results = ExperimentRunner(_grid(), shards=2,
                                   monitor=monitor).run()
        assert all(r.passed for r in results)
        kinds = Counter(e.kind for e in monitor.events)
        assert kinds["scheduled"] == 4
        assert kinds["started"] == 4
        assert kinds["finished"] == 4
        assert kinds["sweep_begin"] == 1 and kinds["sweep_end"] == 1

    def test_heartbeats_flow_during_long_runs(self):
        monitor = SweepMonitor(live=False)
        scenarios = scenario_grid(
            "gsm", _base_config(), "gsm_encode",
            params={"frames": 8, "seed": 1}, seed=1)
        results = ExperimentRunner(scenarios, shards=1, timeout_s=120,
                                   monitor=monitor, heartbeat_s=0.005).run()
        assert all(r.passed for r in results)
        beats = [e for e in monitor.events if e.kind == "heartbeat"]
        assert beats, "expected at least one heartbeat from the worker"
        assert all(e.host_seconds > 0 for e in beats)

    def test_worker_death_is_reported(self, tmp_path):
        def die(config, **params):
            os._exit(3)

        scenario = Scenario(name="dies", config=_base_config(), workload=die)
        [result] = ExperimentRunner([scenario], shards=1,
                                    timeout_s=60).run()
        assert not result.passed
        assert "died" in result.error
        assert "exit code 3" in result.error


class TestMonitorConvenience:
    def test_monitor_true_logs_next_to_store(self, tmp_path):
        store_path = str(tmp_path / "s.sqlite")
        runner = ExperimentRunner(_grid(1), store=store_path, monitor=True)
        runner.monitor.live = False
        runner.run()
        runner.monitor.close()
        log_path = str(tmp_path / "sweep.events.jsonl")
        assert os.path.exists(log_path)
        events = read_events(log_path)
        assert _terminal_counts(events) == {"finished": 1}

    def test_invalid_heartbeat_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ExperimentRunner([], heartbeat_s=0)
