"""Scenario content-key semantics: stability, sensitivity, uncacheability."""

import dataclasses

import pytest

from repro.api import PlatformBuilder, Scenario
from repro.soc.config import InterconnectKind
from repro.store import (
    CODE_VERSION,
    UncacheableScenarioError,
    canonical_value,
    scenario_key,
)


def _config(**overrides):
    config = PlatformBuilder().pes(2).wrapper_memories(1).build()
    return dataclasses.replace(config, **overrides) if overrides else config


def _scenario(**kwargs):
    defaults = dict(name="point", config=_config(), workload="fir",
                    params={"num_samples": 8, "seed": 3}, seed=42)
    defaults.update(kwargs)
    return Scenario(**defaults)


class TestKeyStability:
    def test_key_is_deterministic(self):
        assert _scenario().cache_key() == _scenario().cache_key()

    def test_param_dict_ordering_does_not_matter(self):
        a = _scenario(params={"num_samples": 8, "seed": 3})
        b = _scenario(params={"seed": 3, "num_samples": 8})
        assert a.cache_key() == b.cache_key()

    def test_override_dict_ordering_does_not_matter(self):
        a = _scenario(overrides={"x": 1, "y": 2})
        b = _scenario(overrides={"y": 2, "x": 1})
        assert a.cache_key() == b.cache_key()

    def test_key_shape(self):
        key = _scenario().cache_key()
        assert len(key) == 64
        assert int(key, 16) >= 0  # hex digest

    def test_module_function_matches_method(self):
        scenario = _scenario()
        assert scenario.cache_key() == scenario_key(scenario)


class TestKeySensitivity:
    def test_config_change_misses(self):
        a = _scenario(config=_config())
        b = _scenario(config=_config(num_memories=2))
        assert a.cache_key() != b.cache_key()

    def test_enum_config_change_misses(self):
        a = _scenario(config=_config())
        b = _scenario(
            config=_config(interconnect=InterconnectKind.CROSSBAR))
        assert a.cache_key() != b.cache_key()

    def test_seed_change_misses(self):
        assert _scenario(seed=1).cache_key() != _scenario(seed=2).cache_key()

    def test_workload_change_misses(self):
        assert (_scenario(workload="fir", params={}).cache_key()
                != _scenario(workload="matmul", params={}).cache_key())

    def test_param_change_misses(self):
        a = _scenario(params={"num_samples": 8})
        b = _scenario(params={"num_samples": 16})
        assert a.cache_key() != b.cache_key()

    def test_max_time_change_misses(self):
        assert (_scenario(max_time=None).cache_key()
                != _scenario(max_time=10_000).cache_key())

    def test_code_version_salt_misses(self):
        scenario = _scenario()
        assert (scenario.cache_key()
                == scenario.cache_key(code_version=CODE_VERSION))
        assert (scenario.cache_key(code_version="a")
                != scenario.cache_key(code_version="b"))


class TestUncacheable:
    def test_inline_factory_raises(self):
        def factory(config, **params):
            return []

        scenario = _scenario(workload=factory, params={})
        with pytest.raises(UncacheableScenarioError, match="inline workload"):
            scenario.cache_key()


class TestCanonicalValue:
    def test_scalars_pass_through(self):
        assert canonical_value(None) is None
        assert canonical_value(True) is True
        assert canonical_value(7) == 7
        assert canonical_value("x") == "x"

    def test_float_full_precision(self):
        assert canonical_value(0.1) == ["float", repr(0.1)]

    def test_enum_carries_class(self):
        tagged = canonical_value(InterconnectKind.MESH)
        assert tagged[0] == "enum"
        assert tagged[1].endswith("InterconnectKind")
        assert tagged[2] == "mesh"

    def test_dataclass_carries_class_and_fields(self):
        tagged = canonical_value(_config())
        assert tagged[0] == "dataclass"
        assert tagged[1].endswith("PlatformConfig")
        assert ["num_pes", 2] in tagged[2]

    def test_sets_are_order_free(self):
        assert canonical_value({3, 1, 2}) == canonical_value({2, 3, 1})

    def test_dicts_are_order_free(self):
        assert (canonical_value({"a": 1, "b": 2})
                == canonical_value({"b": 2, "a": 1}))


class TestCanonicalUnambiguity:
    """Tagged forms must never collide with literal container values."""

    def test_literal_list_does_not_collide_with_float_tag(self):
        assert canonical_value(["float", "1.0"]) != canonical_value(1.0)

    def test_literal_list_does_not_collide_with_bytes_tag(self):
        assert (canonical_value(["bytes", "ff"])
                != canonical_value(bytes.fromhex("ff")))

    def test_nested_list_tag_does_not_collide(self):
        assert (canonical_value(["list", "x"])
                != canonical_value([["x"]]))
        assert canonical_value(["list", "x"]) != canonical_value(["x"])

    def test_int_and_str_dict_keys_stay_distinct(self):
        assert canonical_value({1: "x"}) != canonical_value({"1": "x"})

    def test_scenario_keys_differ_for_colliding_literals(self):
        a = _scenario(params={"p": 1.0})
        b = _scenario(params={"p": ["float", "1.0"]})
        assert a.cache_key() != b.cache_key()
