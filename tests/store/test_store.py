"""ResultStore semantics: round trips, corruption tolerance, schema."""

import os
import sqlite3

import pytest

from repro.api import ExperimentRunner, PlatformBuilder, Scenario
from repro.store import SCHEMA_VERSION, ResultStore


def _result(name="point", samples=8):
    config = PlatformBuilder().pes(1).wrapper_memories(1).build()
    scenario = Scenario(name=name, config=config, workload="fir",
                        params={"num_samples": samples, "seed": 3}, seed=42)
    return scenario, ExperimentRunner([scenario]).run()[0]


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        scenario, result = _result()
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            key = scenario.cache_key()
            store.put(key, result, workload="fir")
            loaded = store.get(key)
        assert loaded is not None
        assert loaded.scenario == result.scenario
        assert loaded.passed
        assert loaded.report.as_dict() == result.report.as_dict()
        assert loaded.platform is None
        assert loaded.cached is False  # provenance set by the runner, not stored

    def test_round_trip_survives_reopen(self, tmp_path):
        scenario, result = _result()
        path = str(tmp_path / "s.sqlite")
        key = scenario.cache_key()
        with ResultStore(path) as store:
            store.put(key, result)
        with ResultStore(path) as store:
            assert key in store
            assert len(store) == 1
            assert store.get(key).report.as_dict() == result.report.as_dict()

    def test_miss_returns_none_and_counts(self, tmp_path):
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            assert store.get("0" * 64) is None
            assert store.stats["misses"] == 1

    def test_put_overwrites(self, tmp_path):
        scenario, first = _result(samples=8)
        _, second = _result(samples=12)
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            key = scenario.cache_key()
            store.put(key, first)
            store.put(key, second)
            assert len(store) == 1
            assert (store.get(key).report.as_dict()
                    == second.report.as_dict())

    def test_invalidate(self, tmp_path):
        scenario, result = _result()
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            key = scenario.cache_key()
            store.put(key, result)
            assert store.invalidate(key) == 1
            assert store.get(key) is None
            store.put(key, result)
            store.put("f" * 64, result)
            assert store.invalidate() == 2
            assert len(store) == 0

    def test_rows_summarize_without_unpickling(self, tmp_path):
        scenario, result = _result()
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            store.put(scenario.cache_key(), result, workload="fir")
            [row] = store.rows()
        assert row["scenario"] == "point"
        assert row["workload"] == "fir"
        assert row["passed"] is True
        assert row["simulated_cycles"] == result.report.simulated_cycles
        assert row["hits"] == 0

    def test_hit_counter_persists(self, tmp_path):
        scenario, result = _result()
        path = str(tmp_path / "s.sqlite")
        key = scenario.cache_key()
        with ResultStore(path) as store:
            store.put(key, result)
            store.get(key)
            store.get(key)
        with ResultStore(path) as store:
            assert store.rows()[0]["hits"] == 2


class TestCorruptionTolerance:
    def test_corrupt_payload_row_is_a_miss(self, tmp_path):
        scenario, result = _result()
        path = str(tmp_path / "s.sqlite")
        key = scenario.cache_key()
        with ResultStore(path) as store:
            store.put(key, result)
        conn = sqlite3.connect(path)
        conn.execute("UPDATE results SET payload = ?", (b"not a pickle",))
        conn.commit()
        conn.close()
        with ResultStore(path) as store:
            assert store.get(key) is None
            assert store.stats["corrupt"] == 1
            # The bad row was dropped: a fresh put repairs the entry.
            store.put(key, result)
            assert store.get(key) is not None

    def test_foreign_pickle_globals_are_rejected(self, tmp_path):
        import pickle

        scenario, result = _result()
        path = str(tmp_path / "s.sqlite")
        key = scenario.cache_key()
        with ResultStore(path) as store:
            store.put(key, result)
        evil = pickle.dumps(os.getcwd)  # callable outside repro.*
        conn = sqlite3.connect(path)
        conn.execute("UPDATE results SET payload = ?", (evil,))
        conn.commit()
        conn.close()
        with ResultStore(path) as store:
            assert store.get(key) is None
            assert store.stats["corrupt"] == 1

    def test_dangerous_builtins_are_rejected(self, tmp_path):
        import builtins
        import pickle

        from repro.store.store import _restricted_loads

        for name in ("eval", "exec", "getattr", "__import__", "open"):
            evil = pickle.dumps(getattr(builtins, name))
            with pytest.raises(pickle.UnpicklingError, match="forbidden"):
                _restricted_loads(evil)

    def test_safe_builtin_containers_still_load(self, tmp_path):
        import pickle

        from repro.store.store import _restricted_loads

        payload = {"a": frozenset({1, 2}), "b": (3, [4]), "c": bytearray(b"x")}
        assert _restricted_loads(pickle.dumps(payload)) == payload

    def test_non_database_file_is_rebuilt(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        with open(path, "w") as handle:
            handle.write("this is not a database")
        with ResultStore(path) as store:
            assert len(store) == 0
            assert store.stats["corrupt"] == 1
        assert os.path.exists(path + ".corrupt")

    def test_other_schema_version_reads_empty(self, tmp_path):
        scenario, result = _result()
        path = str(tmp_path / "s.sqlite")
        with ResultStore(path) as store:
            store.put(scenario.cache_key(), result)
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with ResultStore(path) as store:
            assert len(store) == 0  # rebuilt, old rows invisible
            assert store.get(scenario.cache_key()) is None
