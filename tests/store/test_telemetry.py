"""Sweep telemetry: event records, JSONL log, progress folding, monitor."""

import io
import json

import pytest

from repro.store import SweepEvent, SweepMonitor, read_events, sweep_progress


def _event(kind, scenario="s", index=0, **kwargs):
    return SweepEvent.now(kind, scenario, index, **kwargs)


class TestSweepEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep event kind"):
            SweepEvent(kind="exploded")

    def test_dict_round_trip(self):
        event = _event("finished", host_seconds=1.5,
                       counters={"passed": True}, detail="ok")
        clone = SweepEvent.from_dict(event.as_dict())
        assert clone == event

    def test_now_stamps_wall_clock(self):
        assert _event("started").wall_time > 0


class TestEventLog:
    def test_read_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = _event("started").as_dict()
        with open(path, "w") as handle:
            handle.write(json.dumps(good) + "\n")
            handle.write("{truncated json\n")
            handle.write("\n")
            handle.write(json.dumps(_event("finished").as_dict()) + "\n")
        events = read_events(str(path))
        assert [e.kind for e in events] == ["started", "finished"]

    def test_missing_log_reads_empty(self, tmp_path):
        assert read_events(str(tmp_path / "absent.jsonl")) == []

    def test_monitor_appends_jsonl(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with SweepMonitor(log_path=path, live=False) as monitor:
            monitor.begin(2)
            monitor.emit(_event("scheduled"))
            monitor.emit(_event("finished", host_seconds=0.5))
        events = read_events(path)
        assert [e.kind for e in events] == ["sweep_begin", "scheduled",
                                           "finished"]
        # Appending: a second sweep extends the same log.
        with SweepMonitor(log_path=path, live=False) as monitor:
            monitor.emit(_event("scheduled", "t"))
        assert len(read_events(path)) == 4


class TestSweepProgress:
    def test_counts_and_states(self):
        events = [
            SweepEvent.now("sweep_begin", counters={"total": 3}),
            _event("scheduled", "a", 0), _event("scheduled", "b", 1),
            _event("scheduled", "c", 2),
            _event("cache_hit", "a", 0, host_seconds=0.1),
            _event("started", "b", 1),
            _event("heartbeat", "b", 1, host_seconds=2.0),
            _event("finished", "c", 2, host_seconds=4.0),
        ]
        snapshot = sweep_progress(events)
        assert snapshot["total"] == 3
        assert snapshot["done"] == 2  # cache hit + finished
        assert snapshot["counts"]["running"] == 1
        assert snapshot["counts"]["cache_hit"] == 1
        assert [row["scenario"] for row in snapshot["running"]] == ["b"]
        assert snapshot["stragglers"][0]["scenario"] == "c"
        assert not snapshot["ended"]

    def test_failures_collected_with_detail(self):
        events = [
            _event("scheduled", "x"), _event("scheduled", "y"),
            _event("failed", "x", detail="boom"),
            _event("timeout", "y", detail="5s"),
            SweepEvent.now("sweep_end"),
        ]
        snapshot = sweep_progress(events)
        assert snapshot["ended"]
        assert {f["scenario"]: f["kind"] for f in snapshot["failures"]} == {
            "x": "failed", "y": "timeout"}

    def test_total_falls_back_to_seen_scenarios(self):
        snapshot = sweep_progress([_event("scheduled", "only")])
        assert snapshot["total"] == 1


class TestMonitorRendering:
    def test_live_progress_line_rewrites(self):
        stream = io.StringIO()
        monitor = SweepMonitor(stream=stream, live=True)
        monitor.begin(2)
        monitor.emit(_event("scheduled", "a"))
        monitor.emit(_event("finished", "a", host_seconds=0.2))
        text = stream.getvalue()
        assert "\r" in text
        assert "1/2 done" in text

    def test_non_tty_stream_stays_silent(self):
        stream = io.StringIO()
        monitor = SweepMonitor(stream=stream)  # StringIO is not a tty
        monitor.emit(_event("scheduled", "a"))
        assert stream.getvalue() == ""

    def test_render_summary_names_stragglers_and_failures(self):
        monitor = SweepMonitor(live=False)
        monitor.begin(3)
        for name, index in (("a", 0), ("b", 1), ("c", 2)):
            monitor.emit(_event("scheduled", name, index))
        monitor.emit(_event("finished", "a", 0, host_seconds=9.0))
        monitor.emit(_event("cache_hit", "b", 1))
        monitor.emit(_event("failed", "c", 2, host_seconds=0.1,
                            detail="exploded"))
        monitor.end()
        text = monitor.render_summary()
        assert "3/3 done" in text
        assert "1 simulated, 1 cached, 1 failed" in text
        assert "a (9.00s)" in text
        assert "failed: c — exploded" in text
