"""Perf smoke test: the timer fast path must beat the Event-per-wait pattern.

Before the scheduler fast path, every ``yield WaitTime(t)`` allocated a
fresh :class:`Event`, notified it, registered the process as a waiter and
routed the wake through the generic notification machinery.  That exact
pattern is still expressible by hand (allocate an event, notify it, wait on
it), which gives an in-process A/B measurement of the removed overhead:

* ``legacy``: one fresh Event per wait (the pre-PR ``WaitTime`` lowering);
* ``fast``:   plain ``yield <int>`` (the timer fast path).

The assertion uses a *generous* margin (the observed gap is well above 2x;
we assert a fraction of it so a loaded CI host cannot flake), plus strict
semantic equivalence: both runs must produce identical scheduler counters
and end times.
"""

import time

from repro.kernel import Event, Module, Simulator

#: Number of timed waits per measured run.
WAITS = 30_000
#: Generous margin: the fast path must be at least this much faster.
MIN_SPEEDUP = 1.15


def run_legacy(waits):
    """One fresh event per timed wait — the pre-fast-path lowering."""
    top = Module("top")
    mod = Module("m", parent=top)
    sim = Simulator(top)

    def proc():
        for _ in range(waits):
            timer = Event("timer")
            timer._bind(sim)
            timer.notify(3)
            yield timer

    mod.add_process(proc)
    start = time.perf_counter()
    stats = sim.run()
    return time.perf_counter() - start, stats, sim.now


def run_fast(waits):
    """Plain integer yields — the per-process reusable timer fast path."""
    top = Module("top")
    mod = Module("m", parent=top)
    sim = Simulator(top)

    def proc():
        for _ in range(waits):
            yield 3

    mod.add_process(proc)
    start = time.perf_counter()
    stats = sim.run()
    return time.perf_counter() - start, stats, sim.now


def test_timer_fast_path_is_faster_with_identical_semantics():
    # Warm both paths once (bytecode caches, allocator warm-up) before
    # the measured runs.
    run_legacy(1_000)
    run_fast(1_000)

    legacy_seconds, legacy_stats, legacy_end = run_legacy(WAITS)
    fast_seconds, fast_stats, fast_end = run_fast(WAITS)

    # Semantics: the fast path schedules exactly what the event path did.
    assert fast_end == legacy_end == 3 * WAITS
    assert fast_stats.timed_steps == legacy_stats.timed_steps == WAITS
    assert fast_stats.delta_cycles == legacy_stats.delta_cycles
    assert fast_stats.process_activations == legacy_stats.process_activations
    assert fast_stats.events_fired == legacy_stats.events_fired == WAITS

    # Speed: generous margin under the observed (>2x) gap.
    assert fast_seconds > 0
    speedup = legacy_seconds / fast_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"timer fast path only {speedup:.2f}x faster than the Event-per-wait "
        f"pattern (legacy {legacy_seconds:.4f}s, fast {fast_seconds:.4f}s)"
    )


def test_delta_fast_path_matches_event_delta_semantics():
    """Direct delta waits behave exactly like notify(0)-driven wakes."""
    results = {}
    for style in ("event", "direct"):
        top = Module("top")
        mod = Module("m", parent=top)
        sim = Simulator(top)
        log = []

        if style == "event":
            def proc():
                for index in range(100):
                    waker = Event("w")
                    waker._bind(sim)
                    waker.notify(0)
                    yield waker
                    log.append(index)
        else:
            def proc():
                for index in range(100):
                    yield 0
                    log.append(index)

        mod.add_process(proc)
        stats = sim.run()
        results[style] = (list(log), stats.delta_cycles, sim.now)

    assert results["event"] == results["direct"]
