"""Scheduler-semantics regression gate: golden counters for fixed seeds.

The kernel's fast paths (per-process timer reuse, direct delta waits,
epoch-checked queue entries) must not change *what* the scheduler does —
only how fast it does it.  These scenarios run deterministic fixed-seed
workloads and compare the scheduler counters (``delta_cycles``,
``process_activations``, ``timed_steps``, ``events_fired``) and the final
simulated time against ``golden_sched_stats.json``, which was recorded on
the pre-fast-path kernel.  CI runs this as the perf-smoke regression gate.

If a *deliberate* semantic change is made (new scheduling feature), rerun
the scenarios and update the golden file in the same commit, explaining the
delta in the commit message.
"""

import json
import os

import pytest

from repro.api import ExperimentRunner, PlatformBuilder, Scenario

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden_sched_stats.json")

COMPARED_COUNTERS = ("delta_cycles", "process_activations", "timed_steps",
                     "events_fired")


def golden_scenarios():
    """The fixed-seed scenario set the golden counters were recorded on."""

    def scen(name, builder, workload, params, seed):
        return Scenario(name=name, config=builder.build(), workload=workload,
                        params=params, seed=seed)

    return [
        scen("golden-fir",
             PlatformBuilder().pes(2).wrapper_memories(2),
             "fir", {"num_samples": 32, "seed": 5}, 5),
        scen("golden-producer-consumer",
             PlatformBuilder().pes(2).wrapper_memories(1),
             "producer_consumer",
             {"num_items": 16, "fifo_depth": 4, "seed": 3}, 3),
        scen("golden-gsm-encode",
             PlatformBuilder().pes(1).wrapper_memories(1),
             "gsm_encode", {"frames": 1, "seed": 42}, 42),
        scen("golden-alloc-churn",
             PlatformBuilder().pes(1).wrapper_memories(1).capacity(1 << 20),
             "alloc_churn",
             {"iterations": 8, "block_words": 16, "gsm_frames": 1, "seed": 9},
             9),
    ]


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)["scenarios"]


@pytest.fixture(scope="module")
def results():
    runs = ExperimentRunner(golden_scenarios()).run()
    for result in runs:
        result.raise_for_status()
    return {result.scenario: result for result in runs}


def test_golden_covers_every_scenario(golden, results):
    assert set(golden) == set(results)


@pytest.mark.parametrize("scenario", [s.name for s in golden_scenarios()])
def test_scheduler_counters_match_golden(scenario, golden, results):
    report = results[scenario].report
    observed = {name: report.kernel_stats[name] for name in COMPARED_COUNTERS}
    observed["simulated_time"] = report.simulated_time
    expected = golden[scenario]
    assert observed == expected, (
        f"scheduler counters changed for fixed-seed scenario {scenario!r} — "
        f"the kernel fast path altered simulation semantics"
    )
