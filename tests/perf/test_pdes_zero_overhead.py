"""``partitions=1`` must be the ordinary sequential simulation, free.

The PDES dispatch is a single integer comparison in ``run_scenario``:
an unpartitioned config must never touch the coordinator, must produce a
report byte-identical to one from a config without the field, and must
not pay measurable wall-clock overhead.
"""

import dataclasses
import time

from repro.api import PlatformBuilder, Scenario, run_scenario

_HOST_TIMING_KEYS = ("wallclock_seconds", "simulation_speed", "host_seconds")

#: Generous ceiling for the A/B smoke: both arms run the identical code
#: path, so even a loaded host stays far under this.
MAX_OVERHEAD_RATIO = 1.5


def _scrub_timing(value):
    if isinstance(value, dict):
        return {k: _scrub_timing(v) for k, v in value.items()
                if k not in _HOST_TIMING_KEYS}
    if isinstance(value, list):
        return [_scrub_timing(item) for item in value]
    return value


def _scenario(config):
    return Scenario(name="seq", config=config, workload="fir",
                    params={"num_samples": 48}, seed=6)


def _mesh_config():
    return (PlatformBuilder().pes(4).wrapper_memories(2)
            .mesh(4, 4).build())


def test_partitions_1_report_is_identical_to_unpartitioned():
    base = _mesh_config()
    explicit = dataclasses.replace(base, partitions=1,
                                   pdes_epoch_cycles=None)
    plain = run_scenario(_scenario(base))
    tagged = run_scenario(_scenario(explicit))
    assert plain.error is None and tagged.error is None
    assert tagged.report.pdes is None
    assert "pdes" not in tagged.report.as_dict()
    assert (_scrub_timing(plain.report.as_dict())
            == _scrub_timing(tagged.report.as_dict()))
    assert base.describe() == explicit.describe()


def test_sequential_dispatch_never_touches_the_coordinator(monkeypatch):
    import repro.pdes.coordinator as coordinator

    def explode(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("run_partitioned called for partitions=1")

    monkeypatch.setattr(coordinator, "run_partitioned", explode)
    result = run_scenario(_scenario(_mesh_config()))
    assert result.error is None
    assert result.report.pdes is None


def test_sequential_wallclock_smoke():
    """A/B timing: the dispatch branch costs nothing measurable."""
    base = _mesh_config()
    explicit = dataclasses.replace(base, partitions=1)
    # Warm-up both arms, then measure the faster of two runs each (the
    # min strips scheduler noise on a shared host).
    run_scenario(_scenario(base))
    run_scenario(_scenario(explicit))

    def measure(config):
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            run_scenario(_scenario(config))
            best = min(best, time.perf_counter() - start)
        return best

    plain = measure(base)
    tagged = measure(explicit)
    assert tagged <= plain * MAX_OVERHEAD_RATIO, (
        f"partitions=1 run took {tagged:.4f}s vs {plain:.4f}s unpartitioned"
    )
