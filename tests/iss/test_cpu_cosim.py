"""Tests for the ALM CPU core and the bus-attached ISS processing element."""

import pytest

from repro.interconnect import SharedBus
from repro.isa import assemble
from repro.iss import ActionKind, Cpu, CpuError, IssProcessor
from repro.kernel import Module, Simulator
from repro.memory import REGISTER_WINDOW_BYTES, StaticMemory
from repro.wrapper import SharedMemoryAPI, SharedMemoryWrapper


def run_cpu(source, max_instructions=10_000):
    cpu = Cpu(assemble(source).words)
    cpu.run(max_instructions=max_instructions)
    return cpu


class TestCpuCore:
    def test_arithmetic_loop(self):
        cpu = run_cpu("""
                MOV r0, #0
                MOV r1, #0
        loop:   ADD r0, r0, #3
                ADD r1, r1, #1
                CMP r1, #10
                BNE loop
                HALT
        """)
        assert cpu.read_register(0) == 30
        assert cpu.halted
        assert cpu.stats.instructions > 40

    def test_conditional_execution_skips(self):
        cpu = run_cpu("""
                MOV r0, #5
                CMP r0, #5
                MOVEQ r1, #1
                MOVNE r2, #1
                HALT
        """)
        assert cpu.read_register(1) == 1
        assert cpu.read_register(2) == 0
        assert cpu.stats.skipped == 1

    def test_signed_comparison(self):
        cpu = run_cpu("""
                MOV r0, #0
                SUB r0, r0, #5      ; r0 = -5
                CMP r0, #3
                MOVLT r1, #1        ; signed less-than must trigger
                MOVGE r2, #1
                HALT
        """)
        assert cpu.read_register(1) == 1
        assert cpu.read_register(2) == 0
        assert cpu.read_register(0) == (-5) & 0xFFFFFFFF

    def test_mul_and_shifts(self):
        cpu = run_cpu("""
                MOV r1, #6
                MOV r2, #7
                MUL r0, r1, r2
                LSL r3, r0, #2
                LSR r4, r3, #1
                ASR r5, r3, #1
                HALT
        """)
        assert cpu.read_register(0) == 42
        assert cpu.read_register(3) == 168
        assert cpu.read_register(4) == 84
        assert cpu.read_register(5) == 84

    def test_scratchpad_load_store(self):
        cpu = run_cpu("""
                MOV r1, #64
                MOV r0, #123
                STR r0, [r1, #4]
                LDR r2, [r1, #4]
                LDRB r3, [r1, #4]
                HALT
        """)
        assert cpu.read_register(2) == 123
        assert cpu.read_register(3) == 123

    def test_function_call_with_bl(self):
        cpu = run_cpu("""
                MOV r0, #5
                BL double
                HALT
        double: ADD r0, r0, r0
                BX lr
        """)
        assert cpu.read_register(0) == 10

    def test_data_table_access(self):
        cpu = run_cpu("""
                B start
        table:  .word 11, 22, 33
        start:  MOV r1, #4          ; byte address of 'table'
                LDR r0, [r1, #8]    ; third entry
                HALT
        """)
        # The program words are not in the scratchpad; loads from the program
        # region fall outside the scratchpad only if addresses collide --
        # here address 12 is inside the scratchpad, so it reads zeros unless
        # the program was also copied there.  Verify the load happened from
        # the scratchpad (zero), documenting the Harvard-style split.
        assert cpu.read_register(0) == 0

    def test_external_access_rejected_standalone(self):
        cpu = Cpu(assemble("""
                MOV r1, #0
                SUB r1, r1, #4      ; address 0xFFFFFFFC, outside scratchpad
                LDR r0, [r1]
                HALT
        """).words)
        with pytest.raises(CpuError):
            cpu.run()

    def test_swi_handler_callback(self):
        calls = []
        cpu = Cpu(assemble("SWI #9\nHALT").words)
        cpu.run(swi_handler=lambda number, core: calls.append(number))
        assert calls == [9]

    def test_step_returns_actions(self):
        cpu = Cpu(assemble("SWI #1\nHALT").words)
        result = cpu.step()
        assert result.action.kind is ActionKind.SWI
        assert result.action.swi_number == 1

    def test_bad_pc(self):
        cpu = Cpu(assemble("MOV r0, #1").words)
        cpu.step()
        with pytest.raises(CpuError):
            cpu.step()  # ran off the end of the program


#: Assembly program exercising the dynamic-memory SWI API:
#: allocate 8 words, write 7 at offset 2, read it back, query the size,
#: free the allocation and exit with r0 = value + size.
SWI_PROGRAM = """
        MOV r0, #8          ; dim
        MOV r1, #4          ; DataType.UINT32
        MOV r3, #0          ; memory index 0
        SWI #1              ; r0 = alloc(8, u32)
        MOV r4, r0          ; keep vptr
        MOV r1, #2          ; offset
        MOV r2, #7          ; value
        SWI #3              ; write(vptr, 2, 7)
        MOV r0, r4
        MOV r1, #2
        SWI #4              ; r0 = read(vptr, 2)
        MOV r5, r0
        MOV r0, r4
        SWI #7              ; r0 = query(vptr) -> 32 bytes
        ADD r5, r5, r0
        MOV r0, r4
        SWI #2              ; free(vptr)
        MOV r0, r5
        SWI #0              ; exit(r0)
"""


class TestIssProcessorOnPlatform:
    def build_platform(self, source, extra_static=False):
        top = Module("top")
        bus = SharedBus("bus", period=10, parent=top)
        wrapper = SharedMemoryWrapper(name="smem0")
        bus.attach_slave("smem0", 0x1000_0000, REGISTER_WINDOW_BYTES, wrapper)
        static = None
        if extra_static:
            static = StaticMemory(0x1000)
            bus.attach_slave("sram", 0x2000_0000, 0x1000, static)
        port = bus.master_port(0, name="iss0")
        api = SharedMemoryAPI(port, base_address=0x1000_0000, sm_addr=0)
        processor = IssProcessor("iss0", port, [api], assemble(source).words,
                                 clock_period=10, parent=top)
        simulator = Simulator(top)
        return simulator, processor, wrapper, static

    def test_swi_dynamic_memory_program(self):
        simulator, processor, wrapper, _ = self.build_platform(SWI_PROGRAM)
        simulator.run()
        assert processor.finished
        assert processor.exit_code == 7 + 32
        assert wrapper.live_count() == 0
        report = processor.report()
        assert report["swi_calls"] == 6
        assert report["instructions"] > 10

    def test_external_load_store_over_bus(self):
        source = """
                MOV r1, #1
                LSL r1, r1, #29     ; r1 = 0x2000_0000 (static RAM window)
                MOV r0, #77
                STR r0, [r1, #16]
                LDR r2, [r1, #16]
                MOV r0, r2
                SWI #0
        """
        simulator, processor, _, static = self.build_platform(source,
                                                              extra_static=True)
        simulator.run()
        assert processor.finished
        assert processor.exit_code == 77
        assert static.read_word_backdoor(16) == 77
        assert processor.bus_accesses == 2

    def test_simulated_time_advances_with_instruction_cycles(self):
        simulator, processor, _, _ = self.build_platform("MOV r0, #0\nSWI #0")
        simulator.run()
        assert processor.finished
        assert simulator.now >= processor.cpu.stats.cycles * 10
