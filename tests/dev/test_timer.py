"""Timer peripheral: one-shot, periodic, software programming, reports."""

from repro.api import PlatformBuilder, run_tasks
from repro.dev.timer import (
    CTRL_ENABLE,
    CTRL_PERIODIC,
    REG_CTRL,
    REG_COMPARE,
    REG_IRQ_LINE,
    REG_STATUS,
)


def build(num_pes=1, **timer_kwargs):
    return (PlatformBuilder().pes(num_pes).wrapper_memories(1)
            .timer(**timer_kwargs).build())


def timer_report(report):
    return next(d for d in report.device_reports if d["kind"] == "timer")


class TestAutoStart:
    def test_periodic_expiry_wakes_waiter(self):
        config = build(compare_cycles=100, periodic=True, auto_start=True)

        def waiter(ctx):
            line = ctx.devices.timer(0).irq_line
            ctx.enable_irq(line)
            ticks = 0
            for _ in range(4):
                yield from ctx.wait_irq(line)
                ticks += 1
            return ticks

        report = run_tasks(config, [waiter],
                           max_time=2_000 * config.clock_period)
        assert report.results["pe0"] == 4
        assert timer_report(report)["expirations"] >= 4

    def test_one_shot_fires_exactly_once(self):
        config = build(compare_cycles=50, periodic=False, auto_start=True)

        def waiter(ctx):
            line = ctx.devices.timer(0).irq_line
            ctx.enable_irq(line)
            yield from ctx.wait_irq(line)
            # Outwait a would-be second period; the line must stay quiet.
            yield from ctx.compute(200)
            return ctx.irq.pending(line)

        report = run_tasks(config, [waiter],
                           max_time=1_000 * config.clock_period)
        assert report.results["pe0"] == 0
        data = timer_report(report)
        assert data["expirations"] == 1
        assert data["enabled"] is False


class TestSoftwareProgramming:
    def test_program_over_the_bus(self):
        """A task arms the idle timer through its register window."""
        config = build(compare_cycles=1000, periodic=False, auto_start=False)

        def programmer(ctx):
            slot = ctx.devices.timer(0)
            ctx.enable_irq(slot.irq_line)
            base = slot.base
            line = yield from ctx.port.read(base + 4 * REG_IRQ_LINE)
            assert line.data == slot.irq_line
            yield from ctx.port.write(base + 4 * REG_COMPARE, 25)
            yield from ctx.port.write(base + 4 * REG_CTRL,
                                      CTRL_ENABLE | CTRL_PERIODIC)
            ticks = 0
            for _ in range(3):
                yield from ctx.wait_irq(slot.irq_line)
                ticks += 1
            # Disable and clear the expiry count.
            yield from ctx.port.write(base + 4 * REG_CTRL, 0)
            status = yield from ctx.port.read(base + 4 * REG_STATUS)
            yield from ctx.port.write(base + 4 * REG_STATUS, 0)
            return (ticks, status.data >= 3)

        report = run_tasks(config, [programmer],
                           max_time=2_000 * config.clock_period)
        assert report.results["pe0"] == (3, True)
        data = timer_report(report)
        assert data["enabled"] is False

    def test_irq_line_register_is_read_only(self):
        config = build(compare_cycles=10)

        def task(ctx):
            slot = ctx.devices.timer(0)
            yield from ctx.port.write(slot.base + 4 * REG_IRQ_LINE, 31)
            value = yield from ctx.port.read(slot.base + 4 * REG_IRQ_LINE)
            return value.data

        report = run_tasks(config, [task], max_time=500 * config.clock_period)
        assert report.results["pe0"] == timer_report(report)["irq_line"]
