"""Interrupt controller semantics: edge/level, masking, doorbells, wakeups."""

import pytest

from repro.api import PlatformBuilder, run_tasks
from repro.dev.irq import (
    REG_ACK,
    REG_ENABLE_BASE,
    REG_PENDING,
    InterruptController,
    IrqClient,
    lines_to_mask,
)


class TestLinesToMask:
    def test_int_and_iterable(self):
        assert lines_to_mask(3) == 0b1000
        assert lines_to_mask([0, 2]) == 0b101

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            lines_to_mask(32)
        with pytest.raises(ValueError):
            lines_to_mask(4, limit=4)


class TestControllerWires:
    """Direct (no-simulation) mask logic on the controller."""

    def make(self, num_pes=2, lines=8):
        return InterruptController("irqc", num_pes=num_pes, lines=lines)

    def test_edge_latches_until_ack(self):
        irqc = self.make()
        irqc.raise_irq(1)
        assert irqc.pending_mask == 0b10
        irqc.ack_mask(0b10)
        assert irqc.pending_mask == 0

    def test_level_follows_wire_through_ack(self):
        irqc = self.make()
        irqc.configure_level(2)
        irqc.set_level(2, True)
        assert irqc.pending_mask == 0b100
        irqc.ack_mask(0b100)          # still asserted: re-pends immediately
        assert irqc.pending_mask == 0b100
        irqc.set_level(2, False)
        assert irqc.pending_mask == 0

    def test_lines_above_width_rejected(self):
        irqc = self.make(lines=4)
        with pytest.raises(ValueError):
            irqc.raise_irq(4)

    def test_enable_is_per_pe(self):
        irqc = self.make()
        client0 = IrqClient(irqc, 0)
        client1 = IrqClient(irqc, 1)
        client0.enable([0, 1])
        client1.enable(1)
        irqc.raise_irq(0)
        assert client0.pending() == 0b1
        assert client1.pending() == 0
        client0.disable(0)
        assert client0.pending() == 0

    def test_register_map_mirrors_wires(self):
        from repro.fabric.transaction import BusOp, BusRequest

        def bus_write(dev, reg, value):
            dev.access(BusRequest(0, BusOp.WRITE, 0, data=value), 4 * reg)

        def bus_read(dev, reg):
            return dev.access(BusRequest(0, BusOp.READ, 0), 4 * reg).data

        irqc = self.make()
        bus_write(irqc, REG_PENDING, 0b101)    # software doorbell (W1S)
        assert bus_read(irqc, REG_PENDING) == 0b101
        assert irqc.soft_raises == 1
        bus_write(irqc, REG_ACK, 0b001)        # W1C
        assert bus_read(irqc, REG_PENDING) == 0b100
        bus_write(irqc, REG_ENABLE_BASE + 1, 0b111)
        assert irqc.enable[1] == 0b111

    def test_wait_on_fully_masked_lines_is_an_error(self):
        irqc = self.make()
        client = IrqClient(irqc, 0)
        with pytest.raises(ValueError):
            next(client.wait(3))


class TestSimulatedDelivery:
    """IRQ delivery through real platform runs."""

    def run_pair(self, waiter, raiser, **kwargs):
        config = (PlatformBuilder().pes(2).wrapper_memories(1)
                  .irq_controller(lines=8).build())
        return run_tasks(config, [waiter, raiser], **kwargs)

    def test_cross_pe_doorbell(self):
        def waiter(ctx):
            ctx.enable_irq(5)
            mask = yield from ctx.wait_irq(5)
            return mask

        def raiser(ctx):
            yield from ctx.compute(20)
            yield from ctx.raise_irq(5)
            return "rang"

        report = self.run_pair(waiter, raiser)
        assert report.results["pe0"] == 1 << 5
        assert report.results["pe1"] == "rang"
        irqc = report.device_reports[0]
        assert irqc["kind"] == "irq_controller"
        assert irqc["soft_raises"] == 1
        assert irqc["wakeups"] >= 1

    def test_raise_before_wait_is_not_lost(self):
        """The latch delivers doorbells rung while the target is busy."""
        def waiter(ctx):
            ctx.enable_irq(2)
            yield from ctx.compute(500)        # doorbell rings in here
            mask = yield from ctx.wait_irq(2)  # must return without blocking
            return mask

        def raiser(ctx):
            yield from ctx.raise_irq(2)
            return "early"

        report = self.run_pair(waiter, raiser)
        assert report.results["pe0"] == 0b100

    def test_wait_any_returns_claimed_mask(self):
        def waiter(ctx):
            ctx.enable_irq([1, 3])
            mask = yield from ctx.wait_irq()
            return mask

        def raiser(ctx):
            yield from ctx.compute(10)
            yield from ctx.raise_irq([1, 3])
            return "rang"

        report = self.run_pair(waiter, raiser)
        assert report.results["pe0"] == 0b1010

    def test_wait_irq_without_devices_raises_task_error(self):
        from repro.kernel.errors import ProcessError

        config = PlatformBuilder().pes(1).wrapper_memories(1).build()

        def task(ctx):
            yield from ctx.wait_irq(0)

        with pytest.raises(ProcessError, match="no interrupt controller"):
            run_tasks(config, [task])
