"""Unit tests for the RegisterFilePeripheral base class."""

import pytest

from repro.dev.peripheral import RegisterFilePeripheral
from repro.fabric.transaction import BusOp, BusRequest, ResponseStatus


class Scratch(RegisterFilePeripheral):
    """Plain register file plus a doubling hook on register 3."""

    def __init__(self):
        super().__init__("scratch", num_regs=4)
        self.hook_writes = []

    def on_read(self, index, value):
        if index == 3:
            return value * 2
        return value

    def on_write(self, index, value):
        self.hook_writes.append((index, value))
        self._regs[index] = value


def serve(slave, request, offset):
    """Drive the slave's access() directly (no interconnect)."""
    return slave.access(request, offset)


class TestRegisterFile:
    def test_scalar_read_write_roundtrip(self):
        dev = Scratch()
        response = serve(dev, BusRequest(0, BusOp.WRITE, 0, data=0xABCD), 4)
        assert response.status is ResponseStatus.OK
        response = serve(dev, BusRequest(0, BusOp.READ, 0), 4)
        assert response.status is ResponseStatus.OK
        assert response.data == 0xABCD
        assert dev.reg_writes == 1 and dev.reg_reads == 1

    def test_hooks_see_every_word_of_a_burst(self):
        dev = Scratch()
        serve(dev, BusRequest(0, BusOp.WRITE, 0, burst_data=[1, 2, 3, 4]), 0)
        assert dev.hook_writes == [(0, 1), (1, 2), (2, 3), (3, 4)]
        response = serve(dev, BusRequest(0, BusOp.READ, 0, burst_length=4), 0)
        # Register 3 reads doubled through the on_read hook.
        assert response.burst_data == [1, 2, 3, 8]

    def test_direct_access_helpers(self):
        dev = Scratch()
        dev.write_reg(2, 99)
        assert dev.read_reg(2) == 99

    @pytest.mark.parametrize("request_, offset", [
        (BusRequest(0, BusOp.READ, 0), 17),                      # misaligned
        (BusRequest(0, BusOp.READ, 0), 16),                      # out of range
        (BusRequest(0, BusOp.READ, 0, burst_length=4), 8),       # burst overrun
        (BusRequest(0, BusOp.READ, 0, size=2), 0),               # sub-word
    ])
    def test_bad_accesses_are_slave_errors(self, request_, offset):
        dev = Scratch()
        response = serve(dev, request_, offset)
        assert response.status is ResponseStatus.SLAVE_ERROR
        assert dev.access_errors == 1

    def test_window_and_latency(self):
        dev = Scratch()
        assert dev.window_bytes() == 16
        assert dev.latency(BusRequest(0, BusOp.READ, 0)) == 1
        assert dev.latency(BusRequest(0, BusOp.READ, 0, burst_length=4)) == 4

    def test_report_shape(self):
        dev = Scratch()
        serve(dev, BusRequest(0, BusOp.WRITE, 0, data=1), 0)
        report = dev.report()
        assert report["name"] == "scratch"
        assert report["kind"] == "peripheral"
        assert report["reg_writes"] == 1
