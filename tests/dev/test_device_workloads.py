"""Device workloads: bit-identity across topologies, memory models, caches.

The acceptance bar for ``repro.dev``: the interrupt-driven FIFO and the
DMA memcpy offload must produce byte-identical results on every
interconnect topology, with wrapper and modeled memories, and with the
L1 caches off and on.
"""

import pytest

from repro.api import PlatformBuilder, Scenario, WorkloadError, run_scenario, workload

TOPOLOGIES = ["bus", "crossbar", "mesh"]
MEMORY_MODELS = ["wrapper", "modeled"]
CACHES = ["uncached", "cached"]


def build_config(topology, memory_model, cache, *, pes, memories, devices):
    builder = PlatformBuilder().pes(pes)
    if memory_model == "wrapper":
        builder = builder.wrapper_memories(memories)
    else:
        builder = builder.modeled_memories(memories)
    if topology == "crossbar":
        builder = builder.crossbar()
    elif topology == "mesh":
        builder = builder.mesh()
    if cache == "cached":
        builder = builder.l1_cache(sets=16, ways=2, line_bytes=16)
    builder = devices(builder)
    return builder.build()


def run_workload(config, name, params):
    result = run_scenario(Scenario(name="t", config=config, workload=name,
                                   params=params))
    result.raise_for_status()
    return result.report


class TestProducerConsumerIrq:
    PARAMS = {"num_items": 10, "fifo_depth": 3, "seed": 5}

    def reference(self):
        config = build_config("bus", "wrapper", "uncached", pes=2, memories=1,
                              devices=lambda b: b.irq_controller())
        return run_workload(config, "producer_consumer_irq", self.PARAMS)

    @pytest.mark.parametrize("cache", CACHES)
    @pytest.mark.parametrize("memory_model", MEMORY_MODELS)
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_bit_identical_everywhere(self, topology, memory_model, cache):
        config = build_config(topology, memory_model, cache, pes=2,
                              memories=1,
                              devices=lambda b: b.irq_controller())
        report = run_workload(config, "producer_consumer_irq", self.PARAMS)
        assert report.all_pes_finished
        assert report.results == self.reference().results

    def test_requires_controller(self):
        config = (PlatformBuilder().pes(2).wrapper_memories(1).build())
        with pytest.raises(WorkloadError, match="interrupt controller"):
            workload.create("producer_consumer_irq", config)

    def test_requires_even_pes(self):
        config = (PlatformBuilder().pes(3).wrapper_memories(1)
                  .irq_controller().build())
        with pytest.raises(WorkloadError, match="even"):
            workload.create("producer_consumer_irq", config)


class TestDmaMemcpy:
    PARAMS = {"words": 96, "mode": "dma", "compute_cycles": 100, "seed": 11}

    def reference(self):
        config = build_config("bus", "wrapper", "uncached", pes=2, memories=2,
                              devices=lambda b: b.dma(2))
        return run_workload(config, "dma_memcpy", self.PARAMS)

    @pytest.mark.parametrize("cache", CACHES)
    @pytest.mark.parametrize("memory_model", MEMORY_MODELS)
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_bit_identical_everywhere(self, topology, memory_model, cache):
        config = build_config(topology, memory_model, cache, pes=2,
                              memories=2, devices=lambda b: b.dma(2))
        report = run_workload(config, "dma_memcpy", self.PARAMS)
        assert report.all_pes_finished
        assert report.results == self.reference().results
        for engine in (d for d in report.device_reports
                       if d["kind"] == "dma"):
            assert engine["transfers"] == 1
            assert engine["words_copied"] == 96
            assert engine["errors"] == 0

    def test_pe_mode_matches_dma_mode(self):
        pe_params = dict(self.PARAMS, mode="pe")
        config = build_config("bus", "wrapper", "uncached", pes=2, memories=2,
                              devices=lambda b: b)
        pe_report = run_workload(config, "dma_memcpy", pe_params)
        assert pe_report.results == self.reference().results

    def test_dma_mode_needs_engine_per_pe(self):
        config = (PlatformBuilder().pes(2).wrapper_memories(1).dma(1).build())
        with pytest.raises(WorkloadError, match="DMA engine per PE"):
            workload.create("dma_memcpy", config, mode="dma")


class TestReports:
    def test_device_reports_surface_in_summary_and_dict(self):
        config = (PlatformBuilder().pes(2).wrapper_memories(1)
                  .irq_controller().build())
        report = run_workload(config, "producer_consumer_irq",
                              {"num_items": 4, "fifo_depth": 2})
        assert any(d["kind"] == "irq_controller"
                   for d in report.device_reports)
        assert "devices:" in report.summary()
        assert report.as_dict()["device_reports"] == report.device_reports

    def test_device_free_platform_has_no_device_reports(self):
        config = PlatformBuilder().pes(2).wrapper_memories(1).build()
        report = run_workload(config, "producer_consumer",
                              {"num_items": 4, "fifo_depth": 2})
        assert report.device_reports == []
        assert "devices:" not in report.summary()
