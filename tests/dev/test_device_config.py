"""Device layout resolution and PlatformConfig integration."""

import pytest

from repro.api import BuilderError, PlatformBuilder
from repro.dev.config import (
    DeviceLayout,
    DmaConfig,
    IrqControllerConfig,
    TimerConfig,
    resolve_layout,
)


class TestResolveLayout:
    def test_empty_devices_resolve_to_none(self):
        assert resolve_layout((), num_pes=2, base_address=0x2000_0000,
                              stride=0x1_0000) is None

    def test_implicit_controller_occupies_window_zero(self):
        layout = resolve_layout((DmaConfig(),), num_pes=2,
                                base_address=0x2000_0000, stride=0x1_0000)
        assert isinstance(layout, DeviceLayout)
        assert layout.controller.base == 0x2000_0000
        assert layout.controller.kind == "irq"
        assert layout.dma(0).base == 0x2001_0000

    def test_irq_lines_explicit_then_lowest_free(self):
        layout = resolve_layout(
            (DmaConfig(irq_line=3), TimerConfig(), DmaConfig()),
            num_pes=2, base_address=0x2000_0000, stride=0x1_0000)
        assert layout.dma(0).irq_line == 3
        # Auto-assigned lines skip the claimed one, lowest first.
        assert layout.timer(0).irq_line == 0
        assert layout.dma(1).irq_line == 1

    def test_dma_master_ids_follow_the_pes(self):
        layout = resolve_layout((DmaConfig(), DmaConfig()), num_pes=4,
                                base_address=0x2000_0000, stride=0x1_0000)
        assert [slot.master_id for slot in layout.dmas] == [4, 5]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate device name"):
            resolve_layout((DmaConfig(name="x"), TimerConfig(name="x")),
                           num_pes=1, base_address=0x2000_0000,
                           stride=0x1_0000)

    def test_duplicate_irq_lines_rejected(self):
        with pytest.raises(ValueError, match="irq_line"):
            resolve_layout((DmaConfig(irq_line=2), TimerConfig(irq_line=2)),
                           num_pes=1, base_address=0x2000_0000,
                           stride=0x1_0000)

    def test_line_outside_controller_width_rejected(self):
        with pytest.raises(ValueError):
            resolve_layout((IrqControllerConfig(lines=4),
                            TimerConfig(irq_line=9)),
                           num_pes=1, base_address=0x2000_0000,
                           stride=0x1_0000)


class TestBuilderSurface:
    def test_builder_composes_devices(self):
        config = (PlatformBuilder().pes(2).wrapper_memories(1)
                  .irq_controller(lines=16).dma(2, burst_words=32)
                  .timer(compare_cycles=64, periodic=True).build())
        layout = config.device_layout()
        assert layout.controller.config.lines == 16
        assert len(layout.dmas) == 2
        assert layout.dmas[0].config.burst_words == 32
        assert len(layout.timers) == 1

    def test_duplicate_controller_rejected(self):
        with pytest.raises(BuilderError):
            PlatformBuilder().irq_controller().irq_controller()

    def test_no_devices_resets(self):
        config = (PlatformBuilder().pes(1).wrapper_memories(1)
                  .dma(1).no_devices().build())
        assert config.device_layout() is None

    def test_device_window_must_not_overlap_memories(self):
        with pytest.raises(ValueError):
            (PlatformBuilder().pes(1).wrapper_memories(1).dma(1)
             .replace(device_base_address=0x1000_0000).build())


class TestDescribe:
    def test_describe_mentions_devices(self):
        config = (PlatformBuilder().pes(2).wrapper_memories(1)
                  .dma(2).timer(compare_cycles=10).build())
        described = config.describe()
        assert "irqc(32)" in described
        assert "2 dma" in described
        assert "1 timer" in described

    def test_describe_without_devices_unchanged(self):
        config = PlatformBuilder().pes(2).wrapper_memories(1).build()
        assert "dma" not in config.describe()
        assert "irqc" not in config.describe()
