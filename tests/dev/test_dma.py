"""DMA engine: burst chunking, errors, fabric accounting, MSI coherence."""

import pytest

from repro.api import PlatformBuilder, run_tasks
from repro.dev.dma import (
    REG_COUNT,
    REG_SRC_MEM,
    REG_STATUS,
    STATUS_ERROR,
    DmaDriver,
)
from repro.memory.protocol import DataType


def dma_report(report, index=0):
    return [d for d in report.device_reports if d["kind"] == "dma"][index]


class TestTransfers:
    def test_chunked_copy_across_memories(self):
        """A transfer longer than one burst splits into multiple bursts."""
        config = (PlatformBuilder().pes(1).wrapper_memories(2)
                  .dma(1, burst_words=32).build())
        data = [(i * 2654435761) & 0xFFFFFFFF for i in range(100)]

        def task(ctx):
            src, dst = ctx.smem(0), ctx.smem(1)
            sp = yield from src.alloc(len(data), DataType.UINT32)
            dp = yield from dst.alloc(len(data), DataType.UINT32)
            yield from src.write_array(sp, data)
            dma = DmaDriver(ctx)
            ok = yield from dma.copy(0, sp, 1, dp, len(data))
            back = yield from dst.read_array(dp, len(data))
            return (ok, back == data)

        report = run_tasks(config, [task],
                           max_time=100_000 * config.clock_period)
        assert report.results["pe0"] == (True, True)
        data_out = dma_report(report)
        assert data_out["transfers"] == 1
        assert data_out["words_copied"] == 100
        assert data_out["errors"] == 0

    def test_offsets_select_a_window(self):
        config = (PlatformBuilder().pes(1).wrapper_memories(1)
                  .dma(1).build())

        def task(ctx):
            smem = ctx.smem(0)
            sp = yield from smem.alloc(8, DataType.UINT32)
            dp = yield from smem.alloc(8, DataType.UINT32)
            yield from smem.write_array(sp, list(range(10, 18)))
            yield from smem.write_array(dp, [0] * 8)
            dma = DmaDriver(ctx)
            ok = yield from dma.copy(0, sp, 0, dp, 4, src_off=2, dst_off=1)
            back = yield from smem.read_array(dp, 8)
            return (ok, back)

        report = run_tasks(config, [task],
                           max_time=50_000 * config.clock_period)
        ok, back = report.results["pe0"]
        assert ok
        assert back == [0, 12, 13, 14, 15, 0, 0, 0]

    def test_bad_memory_index_sets_error_status(self):
        config = (PlatformBuilder().pes(1).wrapper_memories(1)
                  .dma(1).build())

        def task(ctx):
            smem = ctx.smem(0)
            sp = yield from smem.alloc(4, DataType.UINT32)
            dma = DmaDriver(ctx)
            ok = yield from dma.copy(7, sp, 0, sp, 4)   # memory 7 missing
            status = yield from dma.read_reg(REG_STATUS)
            return (ok, status)

        report = run_tasks(config, [task],
                           max_time=50_000 * config.clock_period)
        ok, status = report.results["pe0"]
        assert ok is False
        # wait() clears DONE/ERROR back to idle after reading it.
        assert status == 0
        assert dma_report(report)["errors"] == 1

    def test_zero_count_is_an_error(self):
        config = (PlatformBuilder().pes(1).wrapper_memories(1)
                  .dma(1).build())

        def task(ctx):
            smem = ctx.smem(0)
            sp = yield from smem.alloc(4, DataType.UINT32)
            dma = DmaDriver(ctx)
            ok = yield from dma.copy(0, sp, 0, sp, 0)
            return ok

        report = run_tasks(config, [task],
                           max_time=50_000 * config.clock_period)
        assert report.results["pe0"] is False
        assert dma_report(report)["status"] == STATUS_ERROR or \
            dma_report(report)["errors"] == 1

    def test_driver_without_engine_raises(self):
        from repro.kernel.errors import ProcessError

        config = (PlatformBuilder().pes(1).wrapper_memories(1)
                  .irq_controller().build())

        def task(ctx):
            DmaDriver(ctx)
            yield from ctx.compute(1)

        with pytest.raises(ProcessError, match="no DMA engine"):
            run_tasks(config, [task], max_time=1_000 * config.clock_period)

    def test_register_layout_is_burst_programmable(self):
        # start() programs SRC_MEM..COUNT with one 7-word burst.
        assert REG_COUNT - REG_SRC_MEM + 1 == 7


class TestFabricIntegration:
    @pytest.mark.parametrize("build", [
        lambda b: b,                      # shared bus
        lambda b: b.crossbar(),
        lambda b: b.mesh(),
    ], ids=["bus", "crossbar", "mesh"])
    def test_dma_master_visible_in_fabric_accounting(self, build):
        config = build(PlatformBuilder().pes(2).wrapper_memories(2)
                       .dma(1)).build()

        def copier(ctx):
            src, dst = ctx.smem(0), ctx.smem(1)
            sp = yield from src.alloc(40, DataType.UINT32)
            dp = yield from dst.alloc(40, DataType.UINT32)
            yield from src.write_array(sp, list(range(40)))
            dma = DmaDriver(ctx)
            ok = yield from dma.copy(0, sp, 1, dp, 40)
            return ok

        def idle(ctx):
            yield from ctx.compute(10)
            return "idle"

        report = run_tasks(config, [copier, idle],
                           max_time=100_000 * config.clock_period)
        assert report.results["pe0"] is True
        slot = config.device_layout().dma(0)
        per_master = report.interconnect_stats["per_master"]
        dma_lane = per_master[slot.master_id]
        assert dma_lane["reads"] >= 1         # READ_ARRAY burst(s)
        assert dma_lane["writes"] >= 1        # WRITE_ARRAY + staging
        assert dma_lane["words"] >= 40

    def test_dma_write_invalidates_cached_line(self):
        """An uncached DMA write supersedes a PE's (dirty) cached copy."""
        config = (PlatformBuilder().pes(1).wrapper_memories(1)
                  .dma(1).l1_cache(sets=8, ways=2, line_bytes=16)
                  .build())
        platform = PlatformBuilder.from_config(config).build_platform()
        data = list(range(100, 116))

        def task(ctx):
            smem = ctx.smem(0)
            sp = yield from smem.alloc(16, DataType.UINT32)
            dp = yield from smem.alloc(16, DataType.UINT32)
            yield from smem.write_array(sp, data)
            dma = DmaDriver(ctx)
            # Flush first: RESERVE/RELEASE is a whole-cache barrier, and
            # the sentinels below must still be cached when the DMA writes.
            yield from dma.flush(smem, sp)
            # Cache the destination with stale sentinels (dirty lines).
            for offset in range(16):
                yield from smem.write(dp, 0xDEAD, offset=offset)
            before = yield from smem.read(dp, offset=0)
            ok = yield from dma.copy(0, sp, 0, dp, 16)
            after = yield from smem.read_array(dp, 16)
            return (before, ok, after == data)

        platform.add_task(task)
        report = platform.run(max_time=100_000 * config.clock_period)
        assert report.results["pe0"] == (0xDEAD, True, True)
        # Superseding a *dirty* line is a coherence scrub (the uncached
        # write serialized after the cached one, so the dirty data is
        # discarded rather than written back).
        assert platform.coherence.stats.scrubs >= 4

    def test_dma_write_drops_clean_cached_line(self):
        """A clean cached copy is invalidated outright by a DMA write."""
        config = (PlatformBuilder().pes(1).wrapper_memories(1)
                  .dma(1).l1_cache(sets=8, ways=2, line_bytes=16)
                  .build())
        platform = PlatformBuilder.from_config(config).build_platform()
        data = list(range(200, 216))

        def task(ctx):
            smem = ctx.smem(0)
            sp = yield from smem.alloc(16, DataType.UINT32)
            dp = yield from smem.alloc(16, DataType.UINT32)
            yield from smem.write_array(sp, data)
            dma = DmaDriver(ctx)
            yield from dma.flush(smem, sp)
            # Cache the destination clean (reads only, no dirty slots).
            before = []
            for offset in range(16):
                value = yield from smem.read(dp, offset=offset)
                before.append(value)
            ok = yield from dma.copy(0, sp, 0, dp, 16)
            after = yield from smem.read_array(dp, 16)
            return (ok, after == data)

        platform.add_task(task)
        report = platform.run(max_time=100_000 * config.clock_period)
        assert report.results["pe0"] == (True, True)
        assert platform.caches[0].stats.invalidations_received >= 1
        assert platform.coherence.stats.invalidations >= 1
