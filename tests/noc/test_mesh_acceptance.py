"""Acceptance: every registry workload runs bit-identical on the mesh.

The ISSUE criteria for the NoC subsystem: all registry workloads must
produce bit-identical results on ``InterconnectKind.MESH`` versus the flat
shared bus — for the wrapper *and* the modelled memory, with caches off
and on — and the platform report must carry the NoC statistics block.
"""

import pytest

from repro.api import ExperimentRunner, PlatformBuilder, Scenario
from repro.soc import InterconnectKind

WORKLOADS = [
    ("gsm_encode", {"frames": 1, "seed": 42}, 4, 1),
    ("stencil", {"size": 32, "iterations": 1, "stride": 1, "seed": 11}, 4, 1),
    ("alloc_churn", {"iterations": 10, "gsm_frames": 1, "seed": 9}, 4, 1),
    ("fir", {"num_samples": 32, "seed": 5}, 4, 2),
    ("matmul", {"rows": 4, "inner": 3, "cols": 3, "seed": 2}, 3, 1),
    ("producer_consumer",
     {"num_items": 12, "fifo_depth": 4, "seed": 3}, 4, 2),
]


def run(workload, params, pes, mems, *, mesh=False, memory_kind="wrapper",
        policy=None):
    builder = PlatformBuilder().pes(pes).memories(mems, memory_kind)
    if mesh:
        builder = builder.mesh()
    if policy is not None:
        builder = builder.l1_cache(policy=policy)
    scenario = Scenario(name=f"{workload}-acceptance", config=builder.build(),
                        workload=workload, params=params, seed=17)
    [result] = ExperimentRunner([scenario]).run()
    result.raise_for_status()
    return result.report


@pytest.mark.parametrize("workload,params,pes,mems",
                         WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_workload_bit_identical_on_mesh_wrapper(workload, params, pes, mems):
    flat = run(workload, params, pes, mems, mesh=False)
    meshed = run(workload, params, pes, mems, mesh=True)
    assert meshed.results == flat.results
    assert meshed.all_pes_finished


@pytest.mark.parametrize("workload,params,pes,mems",
                         [w for w in WORKLOADS
                          if w[0] in ("gsm_encode", "stencil", "fir")],
                         ids=["gsm_encode", "stencil", "fir"])
def test_workload_bit_identical_on_mesh_modeled_memory(workload, params,
                                                       pes, mems):
    flat = run(workload, params, pes, mems, mesh=False,
               memory_kind="modeled")
    meshed = run(workload, params, pes, mems, mesh=True,
                 memory_kind="modeled")
    assert meshed.results == flat.results


@pytest.mark.parametrize("policy", ["write_back", "write_through"])
@pytest.mark.parametrize("workload,params,pes,mems",
                         [w for w in WORKLOADS
                          if w[0] in ("gsm_encode", "stencil")],
                         ids=["gsm_encode", "stencil"])
def test_workload_bit_identical_on_mesh_with_caches(workload, params, pes,
                                                    mems, policy):
    flat = run(workload, params, pes, mems, mesh=False)
    cached = run(workload, params, pes, mems, mesh=True, policy=policy)
    assert cached.results == flat.results
    assert cached.cache_hit_rate() > 0.0


def test_mesh_report_carries_noc_stats():
    report = run("gsm_encode", {"frames": 1, "seed": 42}, 4, 2, mesh=True)
    noc = report.interconnect_stats["noc"]
    assert noc["rows"] * noc["cols"] >= 4
    assert noc["packets"] == 2 * report.total_transactions()
    assert noc["latency_percentiles"]["count"] == report.total_transactions()
    assert "mesh" in report.description
    # The uniform per-master columns exist on the mesh too.
    per_master = report.interconnect_stats["per_master"]
    assert set(per_master) == set(range(4))
    assert all(row["transactions"] > 0 for row in per_master.values())


def test_mesh_config_roundtrips_through_grid_overrides():
    """`interconnect` works as a scenario-grid axis (the topology benches
    rely on dataclasses.replace handling the enum)."""
    import dataclasses

    base = PlatformBuilder().pes(2).wrapper_memories(1).build()
    meshed = dataclasses.replace(base, interconnect=InterconnectKind.MESH)
    assert meshed.resolved_noc().rows * meshed.resolved_noc().cols >= 2
    scenario = Scenario(name="grid-mesh", config=meshed, workload="fir",
                        params={"num_samples": 16, "seed": 1}, seed=1)
    [result] = ExperimentRunner([scenario]).run()
    result.raise_for_status()
