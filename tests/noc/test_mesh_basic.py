"""Unit tests of the mesh NoC: configuration, routing, flit math,
transfers, arbitration fairness, backpressure and decode errors."""

import pytest

from repro.fabric import BusOp, BusRequest, BusResponse, BusSlave, ResponseStatus
from repro.kernel import Module, Simulator
from repro.noc import (
    LOCAL_LANE,
    MeshNoc,
    NocConfig,
    entry_lane,
    flits_for_payload,
)


class ScratchSlave(BusSlave):
    """A tiny word-addressable RAM with configurable access latency."""

    def __init__(self, words=64, cycles=1):
        self.storage = [0] * words
        self.cycles = cycles
        self.accesses = 0

    def latency(self, request):
        return self.cycles

    def access(self, request, offset):
        self.accesses += 1
        index = offset // 4
        if index >= len(self.storage):
            return BusResponse(status=ResponseStatus.SLAVE_ERROR)
        if request.op is BusOp.WRITE:
            if request.burst_data is not None:
                for i, word in enumerate(request.burst_data):
                    self.storage[index + i] = word
            else:
                self.storage[index] = request.data
            return BusResponse()
        if request.burst_length:
            return BusResponse(
                burst_data=self.storage[index:index + request.burst_length]
            )
        return BusResponse(data=self.storage[index])


class MasterHarness(Module):
    """Runs a scripted list of operations and records the responses."""

    def __init__(self, name, port, script, parent=None, start_delay=0):
        super().__init__(name, parent)
        self.port = port
        self.script = script
        self.responses = []
        self.finish_time = None
        self.start_delay = start_delay
        self.add_process(self._run, name="driver")

    def _run(self):
        if self.start_delay:
            yield self.start_delay
        for request in self.script:
            response = yield from self.port.transfer(request)
            self.responses.append(response)
        self.finish_time = self.port._interconnect.sim_now()


def run_top(build):
    top = Module("top")
    artifacts = build(top)
    sim = Simulator(top)
    sim.run()
    return sim, artifacts


class TestNocConfig:
    def test_defaults_resolve_near_square(self):
        assert NocConfig().resolve(4, 1).rows == 2
        assert NocConfig().resolve(4, 1).cols == 2
        resolved = NocConfig().resolve(8, 2)
        assert resolved.rows * resolved.cols >= 8
        assert NocConfig().resolve(1, 1).rows == 1

    def test_partial_dims_complete_the_grid(self):
        resolved = NocConfig(rows=2).resolve(8, 1)
        assert (resolved.rows, resolved.cols) == (2, 4)
        resolved = NocConfig(cols=3).resolve(7, 1)
        assert (resolved.rows, resolved.cols) == (3, 3)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            NocConfig(rows=0)
        with pytest.raises(ValueError):
            NocConfig(flit_bytes=0)
        with pytest.raises(ValueError):
            NocConfig(link_cycles=0)
        with pytest.raises(ValueError):
            NocConfig(router_cycles=-1)
        with pytest.raises(ValueError):
            NocConfig(buffer_packets=0)
        with pytest.raises(ValueError):
            NocConfig(memory_nodes=[1])  # must be a tuple
        with pytest.raises(ValueError):
            NocConfig(rows=2, cols=2, memory_nodes=(4,)).resolve(1, 1)

    def test_describe_mentions_dims(self):
        assert "2x3" in NocConfig(rows=2, cols=3).describe()


class TestFlitMath:
    def test_head_only_packet(self):
        assert flits_for_payload(0, 4) == 1

    def test_payload_rounds_up_to_flits(self):
        assert flits_for_payload(4, 4) == 2
        assert flits_for_payload(5, 4) == 3
        assert flits_for_payload(16, 8) == 3

    def test_entry_lanes_distinct_from_local(self):
        lanes = {entry_lane(d) for d in "EWNS"}
        assert len(lanes) == 4
        assert LOCAL_LANE not in lanes


class TestXYRouting:
    def make_noc(self):
        return MeshNoc("noc", period=10, config=NocConfig(rows=3, cols=3))

    def test_same_node_is_inject_then_eject(self):
        noc = self.make_noc()
        path, lanes = noc._route(4, 4, lane0=7)
        assert path == [("inj", 4), ("ej", 4)]
        assert lanes == [7, LOCAL_LANE]

    def test_x_before_y(self):
        noc = self.make_noc()
        path, _lanes = noc._route(0, 8, lane0=0)
        # node 0 -> 1 -> 2 (east hops) then 2 -> 5 -> 8 (south hops).
        assert path == [("inj", 0), ("link", 0, "E"), ("link", 1, "E"),
                        ("link", 2, "S"), ("link", 5, "S"), ("ej", 8)]

    def test_west_and_north_directions(self):
        noc = self.make_noc()
        path, _lanes = noc._route(8, 0, lane0=0)
        assert path == [("inj", 8), ("link", 8, "W"), ("link", 7, "W"),
                        ("link", 6, "N"), ("link", 3, "N"), ("ej", 0)]

    def test_lanes_follow_entry_sides(self):
        noc = self.make_noc()
        _path, lanes = noc._route(0, 2, lane0=5)
        # inject lane, local lane at the first link, then entered-from-west.
        assert lanes == [5, LOCAL_LANE, entry_lane("E"), entry_lane("E")]

    def test_route_length_is_manhattan_distance(self):
        noc = self.make_noc()
        for src in range(9):
            for dst in range(9):
                path, lanes = noc._route(src, dst, lane0=0)
                hops = (abs(src % 3 - dst % 3) + abs(src // 3 - dst // 3))
                assert len(path) == hops + 2  # inject + links + eject
                assert len(lanes) == len(path)


class TestMeshTransfers:
    def test_single_master_read_write(self):
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=2, cols=2), parent=top)
            slave = ScratchSlave()
            noc.attach_slave("ram", 0x0, 0x100, slave)
            port = noc.master_port(0)
            script = [
                BusRequest(0, BusOp.WRITE, 0x10, data=0xBEEF),
                BusRequest(0, BusOp.READ, 0x10),
            ]
            harness = MasterHarness("m0", port, script, parent=top)
            return noc, slave, harness

        _sim, (noc, slave, harness) = run_top(build)
        assert [r.status for r in harness.responses] == [ResponseStatus.OK] * 2
        assert harness.responses[1].data == 0xBEEF
        assert slave.storage[4] == 0xBEEF
        assert noc.stats.transactions == 2
        assert noc.stats.master(0).reads == 1
        assert noc.stats.master(0).writes == 1

    def test_burst_round_trip(self):
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=2, cols=2), parent=top)
            slave = ScratchSlave()
            noc.attach_slave("ram", 0x0, 0x100, slave)
            port = noc.master_port(3)
            script = [
                BusRequest(3, BusOp.WRITE, 0x0, burst_data=[1, 2, 3, 4]),
                BusRequest(3, BusOp.READ, 0x0, burst_length=4),
            ]
            harness = MasterHarness("m3", port, script, parent=top)
            return noc, slave, harness

        _sim, (noc, _slave, harness) = run_top(build)
        assert harness.responses[1].burst_data == [1, 2, 3, 4]
        # 4 words x 4 bytes at 4 B/flit = 4 body flits + head.
        assert noc.noc_stats.flits_sent >= 2 * 5

    def test_network_latency_exceeds_slave_latency(self):
        """End-to-end cycles include router pipeline and link traversal."""
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=2, cols=2, router_cycles=2,
                                           link_cycles=3), parent=top)
            slave = ScratchSlave(cycles=1)
            noc.attach_slave("ram", 0x0, 0x100, slave)
            port = noc.master_port(0)
            harness = MasterHarness(
                "m0", port, [BusRequest(0, BusOp.READ, 0x0)], parent=top)
            return noc, slave, harness

        _sim, (noc, _slave, harness) = run_top(build)
        [response] = harness.responses
        # Node 0 -> node 3 is two hops each way plus inject/eject ports:
        # every port pays router_cycles + link_cycles for the head alone.
        assert response.total_cycles > 4 * (2 + 3)
        assert response.slave_cycles == 1
        latencies = noc.noc_stats.latencies
        assert latencies == [response.total_cycles]

    def test_decode_error_completes_and_is_accounted(self):
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=1, cols=1), parent=top)
            slave = ScratchSlave()
            noc.attach_slave("ram", 0x0, 0x100, slave)
            port = noc.master_port(0)
            harness = MasterHarness(
                "m0", port, [BusRequest(0, BusOp.READ, 0x9999)], parent=top)
            return noc, slave, harness

        _sim, (noc, _slave, harness) = run_top(build)
        [response] = harness.responses
        assert response.status is ResponseStatus.DECODE_ERROR
        assert noc.stats.decode_errors == 1
        assert noc.stats.master(0).errors == 1
        assert noc.stats.master(0).transactions == 1

    def test_multiple_masters_same_slave_all_complete(self):
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=2, cols=2), parent=top)
            slave = ScratchSlave(cycles=3)
            noc.attach_slave("ram", 0x0, 0x100, slave)
            harnesses = []
            for master in range(4):
                port = noc.master_port(master)
                script = [BusRequest(master, BusOp.WRITE, 0x10 * master,
                                     data=master + 1),
                          BusRequest(master, BusOp.READ, 0x10 * master)]
                harnesses.append(
                    MasterHarness(f"m{master}", port, script, parent=top))
            return noc, slave, harnesses

        _sim, (noc, slave, harnesses) = run_top(build)
        for master, harness in enumerate(harnesses):
            assert harness.responses[1].data == master + 1
        assert noc.stats.transactions == 8
        assert slave.accesses == 8

    def test_slaves_on_different_nodes_serve_in_parallel(self):
        """Traffic to distinct memories must overlap (unlike a shared bus)."""
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=2, cols=2), parent=top)
            slow0, slow1 = ScratchSlave(cycles=40), ScratchSlave(cycles=40)
            noc.attach_slave("ram0", 0x0, 0x100, slow0)
            noc.attach_slave("ram1", 0x1000, 0x100, slow1)
            h0 = MasterHarness("m0", noc.master_port(0),
                               [BusRequest(0, BusOp.READ, 0x0)], parent=top)
            h1 = MasterHarness("m1", noc.master_port(1),
                               [BusRequest(1, BusOp.READ, 0x1000)], parent=top)
            return noc, h0, h1

        sim, (_noc, h0, h1) = run_top(build)
        # Serialized service would need >= 80 cycles of slave time alone.
        assert sim.now < 2 * 40 * 10

    def test_one_outstanding_request_enforced(self):
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=1, cols=1), parent=top)
            slave = ScratchSlave(cycles=50)
            noc.attach_slave("ram", 0x0, 0x100, slave)
            port = noc.master_port(0)
            harness = MasterHarness(
                "m0", port, [BusRequest(0, BusOp.READ, 0x0)], parent=top)

            class Doubler(Module):
                def __init__(self, parent):
                    super().__init__("doubler", parent)
                    self.error = None
                    self.add_process(self._run)

                def _run(self):
                    yield 50  # while the first request is in flight
                    try:
                        noc._post(port, BusRequest(0, BusOp.READ, 0x0))
                    except RuntimeError as exc:
                        self.error = exc

            doubler = Doubler(top)
            return noc, harness, doubler

        _sim, (_noc, _harness, doubler) = run_top(build)
        assert isinstance(doubler.error, RuntimeError)

    def test_duplicate_master_id_rejected(self):
        noc = MeshNoc("noc", period=10, config=NocConfig(rows=1, cols=1))
        noc.master_port(0)
        with pytest.raises(ValueError):
            noc.master_port(0)

    def test_placement_overrides(self):
        noc = MeshNoc("noc", period=10,
                      config=NocConfig(rows=2, cols=2, pe_nodes=(3, 2),
                                       memory_nodes=(0,)))
        assert noc.node_of_master(0) == 3
        assert noc.node_of_master(1) == 2
        assert noc.node_of_slave(0) == 0

    def test_default_placement_spreads_slaves_from_far_corner(self):
        noc = MeshNoc("noc", period=10, config=NocConfig(rows=2, cols=2))
        assert noc.node_of_master(0) == 0
        assert noc.node_of_slave(0) == 3
        assert noc.node_of_slave(1) == 2


class TestBackpressure:
    def test_tiny_buffers_still_deliver_everything(self):
        """Saturating one ejection port with single-packet buffers must
        block worms, not drop or deadlock them."""
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=2, cols=2, buffer_packets=1),
                          parent=top)
            slave = ScratchSlave(words=256, cycles=8)
            noc.attach_slave("ram", 0x0, 0x400, slave)
            harnesses = []
            for master in range(4):
                script = [BusRequest(master, BusOp.WRITE,
                                     0x20 * master + 4 * i,
                                     burst_data=[master * 100 + i] * 4)
                          for i in range(3)]
                harnesses.append(MasterHarness(
                    f"m{master}", noc.master_port(master), script,
                    parent=top))
            return noc, slave, harnesses

        _sim, (noc, slave, _harnesses) = run_top(build)
        assert noc.stats.transactions == 12
        assert slave.accesses == 12
        # Single-packet buffers leave no room for rival queues: contention
        # surfaces as upstream channels held by blocked worms instead.
        blocked = sum(link.blocked_cycles
                      for link in noc.noc_stats.links.values())
        assert blocked > 0

    def test_deeper_buffers_expose_grant_contention(self):
        """With room to queue, rival input lanes meet at the arbiter."""
        def build(top):
            noc = MeshNoc("noc", period=10,
                          config=NocConfig(rows=2, cols=2, buffer_packets=4),
                          parent=top)
            slave = ScratchSlave(words=256, cycles=8)
            noc.attach_slave("ram", 0x0, 0x400, slave)
            harnesses = []
            for master in range(4):
                script = [BusRequest(master, BusOp.WRITE,
                                     0x20 * master + 4 * i,
                                     burst_data=[master * 100 + i] * 4)
                          for i in range(3)]
                harnesses.append(MasterHarness(
                    f"m{master}", noc.master_port(master), script,
                    parent=top))
            return noc, slave, harnesses

        _sim, (noc, _slave, _harnesses) = run_top(build)
        assert noc.stats.transactions == 12
        contended = sum(link.contended_grants
                        for link in noc.noc_stats.links.values())
        assert contended > 0
        assert noc.noc_stats.router_contention
