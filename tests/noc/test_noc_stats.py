"""Unit tests of the NoC statistics layer (links, contention, latencies)."""

from repro.noc import LinkStats, NocStats


class TestLinkStats:
    def test_utilization_bounds(self):
        link = LinkStats("n0->n1", busy_cycles=50)
        assert link.utilization(100) == 0.5
        assert link.utilization(25) == 1.0  # clamped
        assert link.utilization(0) == 0.0

    def test_as_dict_round_trip(self):
        link = LinkStats("n0->n1", busy_cycles=3, packets=2, flits=7,
                         blocked_cycles=1, contended_grants=1)
        assert link.as_dict() == {
            "busy_cycles": 3, "packets": 2, "flits": 7,
            "blocked_cycles": 1, "contended_grants": 1,
        }


class TestNocStats:
    def test_link_created_on_first_use(self):
        stats = NocStats()
        link = stats.link("req:n0->n1")
        assert stats.link("req:n0->n1") is link
        assert link.name == "req:n0->n1"

    def test_packet_and_hop_accounting(self):
        stats = NocStats()
        stats.record_packet(flits=5, hops=3)
        stats.record_packet(flits=1, hops=5)
        assert stats.packets_sent == 2
        assert stats.flits_sent == 6
        assert stats.average_hops == 4.0

    def test_latency_percentiles_nearest_rank(self):
        stats = NocStats()
        for cycles in [10, 20, 30, 40, 100]:
            stats.record_latency(cycles)
        summary = stats.latency_percentiles()
        assert summary == {"count": 5, "p50": 30, "p95": 100, "max": 100}

    def test_empty_latency_percentiles(self):
        # No recorded packets must read as "no data", never as an observed
        # zero-cycle latency.
        assert NocStats().latency_percentiles() == {
            "count": 0, "p50": None, "p95": None, "max": None,
        }

    def test_contention_ignores_zero_waiting(self):
        stats = NocStats()
        stats.record_contention(3, 0)
        assert stats.router_contention == {}
        stats.record_contention(3, 2)
        stats.record_contention(3, 1)
        assert stats.router_contention == {3: 3}

    def test_hottest_links_ranked_and_tied_by_name(self):
        stats = NocStats()
        stats.link("b").busy_cycles = 10
        stats.link("a").busy_cycles = 10
        stats.link("c").busy_cycles = 99
        ranked = stats.hottest_links(2)
        assert [link.name for link in ranked] == ["c", "a"]

    def test_as_dict_includes_utilization_when_elapsed_known(self):
        stats = NocStats()
        stats.link("req:n0->n1").busy_cycles = 25
        summary = stats.as_dict(elapsed_cycles=100)
        assert summary["link_utilization"]["req:n0->n1"] == 0.25
        assert "link_utilization" not in stats.as_dict()
