"""Integration tests: the GSM workload running on the simulated MPSoC.

These are the closest analogue of the paper's experiment: processing
elements encode GSM channels with every dynamic buffer managed through the
shared-memory wrapper, and the encoded parameters must match the pure-Python
reference encoder bit for bit.
"""


from repro.soc import MemoryKind, Platform, PlatformConfig
from repro.sw.gsm import (
    PARAMETERS_PER_FRAME,
    PLACEMENT_STRIPED,
    build_gsm_tasks,
    check_platform_results,
    make_gsm_channels,
    reference_encode,
)


def run_gsm(num_pes, num_memories, frames=1, memory_kind=MemoryKind.WRAPPER,
            placement=None, idle_tick=False):
    channels = make_gsm_channels(num_pes, frames, seed=42)
    reference = reference_encode(channels)
    config = PlatformConfig(
        num_pes=num_pes,
        num_memories=num_memories,
        memory_kind=memory_kind,
        memory_capacity_bytes=1 << 20,
        idle_tick_memories=idle_tick,
        idle_tick_work=1,
    )
    tasks = (build_gsm_tasks(channels, placement=placement) if placement
             else build_gsm_tasks(channels))
    platform = Platform(config)
    platform.add_tasks(tasks)
    report = platform.run()
    return report, reference


class TestSinglePe:
    def test_one_frame_matches_reference(self):
        report, reference = run_gsm(num_pes=1, num_memories=1, frames=1)
        assert report.all_pes_finished
        assert check_platform_results(report.results, reference)
        frames = report.results["pe0"]
        assert len(frames) == 1
        assert len(frames[0]) == PARAMETERS_PER_FRAME

    def test_memory_is_clean_after_run(self):
        report, _ = run_gsm(num_pes=1, num_memories=1, frames=2)
        memory = report.memory_reports[0]
        assert memory["live_allocations"] == 0
        assert memory["total_allocations"] == 2 * 2  # input + output per frame
        assert memory["total_frees"] == memory["total_allocations"]


class TestMultiPe:
    def test_two_pes_one_memory(self):
        report, reference = run_gsm(num_pes=2, num_memories=1, frames=1)
        assert report.all_pes_finished
        assert check_platform_results(report.results, reference)

    def test_two_pes_two_memories_dedicated(self):
        report, reference = run_gsm(num_pes=2, num_memories=2, frames=1)
        assert check_platform_results(report.results, reference)
        # Dedicated placement: each memory served one PE's allocations.
        for memory in report.memory_reports:
            assert memory["total_allocations"] == 2

    def test_striped_placement_touches_every_memory(self):
        report, reference = run_gsm(num_pes=1, num_memories=2, frames=2,
                                    placement=PLACEMENT_STRIPED)
        assert check_platform_results(report.results, reference)
        for memory in report.memory_reports:
            assert memory["total_allocations"] == 2

    def test_gsm_on_modeled_baseline_matches_reference(self):
        report, reference = run_gsm(num_pes=1, num_memories=1, frames=1,
                                    memory_kind=MemoryKind.MODELED)
        assert check_platform_results(report.results, reference)

    def test_cycle_driven_mode_still_correct(self):
        report, reference = run_gsm(num_pes=1, num_memories=2, frames=1,
                                    idle_tick=True)
        assert check_platform_results(report.results, reference)


class TestPlatformMetrics:
    def test_gsm_traffic_shape(self):
        report, _ = run_gsm(num_pes=2, num_memories=1, frames=1)
        # Per frame and per PE: 2 ALLOC, 2 FREE, array writes/reads.
        ops = report.memory_reports[0]["op_counts"]
        assert ops["ALLOC"] == 4
        assert ops["FREE"] == 4
        assert ops["WRITE_ARRAY"] >= 4
        assert ops["READ_ARRAY"] >= 4
        assert report.total_transactions() > 20
        assert report.simulation_speed > 0
