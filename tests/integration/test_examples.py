"""Smoke suite: every shipped example must run cleanly end to end.

Each ``examples/*.py`` is executed in a subprocess with
``REPRO_EXAMPLE_QUICK=1`` (examples honouring the knob shrink their
parameters) so the whole suite stays CI-friendly.  The suite
auto-discovers the directory — a new example is covered the moment it
lands, and a stale one fails here before a user finds it.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLES = sorted(name for name in os.listdir(EXAMPLES_DIR)
                  if name.endswith(".py"))


def test_examples_were_discovered():
    assert "quickstart.py" in EXAMPLES
    assert "dma_offload.py" in EXAMPLES


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_QUICK"] = "1"
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, example)],
        capture_output=True, text=True, timeout=300, env=env,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{example} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{example} printed nothing"
