"""Repository-level pytest configuration.

Makes the in-tree ``src`` layout importable when the package is not
installed (``pip install -e .`` is the normal route), and registers the
``--quick`` option the evaluation benches use for smoke runs in CI.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--quick", action="store_true", default=False,
        help="shrink benchmark workloads to smoke-test size",
    )
